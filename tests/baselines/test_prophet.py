"""Tests for the Prophet-style additive baseline."""

import datetime as dt

import numpy as np
import pytest

from repro.baselines import Prophet, ProphetForecaster
from repro.metrics import mape
from repro.traffic import timeline


def synthetic_series(days=14, amplitude=20.0, trend=0.0, noise=0.0, seed=0):
    """Daily sinusoid + linear trend series at 5-minute cadence."""
    stamps = timeline(dt.date(2018, 7, 1), days)
    rng = np.random.default_rng(seed)
    day_frac = np.array([(s.hour * 60 + s.minute) / 1440.0 for s in stamps])
    t = np.arange(len(stamps)) / len(stamps)
    values = 60.0 + amplitude * np.sin(2 * np.pi * day_frac) + trend * t
    values = values + rng.normal(0.0, noise, size=len(values))
    return stamps, values


class TestFitQuality:
    def test_learns_daily_seasonality(self):
        stamps, values = synthetic_series()
        split = len(stamps) * 3 // 4
        model = Prophet().fit(stamps[:split], values[:split])
        prediction = model.predict(stamps[split:])
        assert mape(prediction, values[split:]) < 3.0

    def test_learns_linear_trend(self):
        stamps, values = synthetic_series(amplitude=0.0, trend=30.0)
        split = len(stamps) * 3 // 4
        model = Prophet().fit(stamps[:split], values[:split])
        prediction = model.predict(stamps[split:])
        assert mape(prediction, values[split:]) < 5.0

    def test_robust_to_noise(self):
        stamps, values = synthetic_series(noise=3.0)
        split = len(stamps) * 3 // 4
        model = Prophet().fit(stamps[:split], values[:split])
        prediction = model.predict(stamps[split:])
        assert mape(prediction, values[split:]) < 8.0

    def test_holiday_effect_recovered(self):
        stamps, values = synthetic_series(days=60)
        holiday = dt.date(2018, 8, 15)
        is_holiday = np.array([s.date() == holiday for s in stamps])
        values = values - 25.0 * is_holiday
        model = Prophet().fit(stamps, values)
        prediction = model.predict(stamps)
        holiday_error = np.abs(prediction[is_holiday] - values[is_holiday]).mean()
        assert holiday_error < 6.0

    def test_no_holidays_variant(self):
        stamps, values = synthetic_series(days=10)
        model = Prophet(use_holidays=False).fit(stamps, values)
        assert np.isfinite(model.predict(stamps[:10])).all()


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            Prophet().predict([dt.datetime(2018, 7, 1)])

    def test_misaligned_inputs(self):
        stamps, values = synthetic_series(days=1)
        with pytest.raises(ValueError):
            Prophet().fit(stamps, values[:-1])

    def test_too_few_observations(self):
        stamps, values = synthetic_series(days=1)
        with pytest.raises(ValueError):
            Prophet().fit(stamps[:5], values[:5])

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            Prophet(daily_order=0)


class TestForecasterAdapter:
    def test_fit_predict_protocol(self, tiny_dataset):
        forecaster = ProphetForecaster()
        forecaster.fit(tiny_dataset)
        prediction = forecaster.predict(tiny_dataset)
        assert prediction.shape == (len(tiny_dataset.split.test),)
        truth, _ = tiny_dataset.evaluation_arrays("test")
        # Calendar model: crude but not absurd on simulated traffic.
        assert mape(prediction, truth) < 120.0

    def test_worse_than_persistence(self, tiny_dataset):
        """The paper's headline: Prophet is far worse than reactive models."""
        from repro.baselines import LastValueBaseline

        truth, _ = tiny_dataset.evaluation_arrays("test")
        prophet_mape = mape(ProphetForecaster().fit(tiny_dataset).predict(tiny_dataset), truth)
        last_mape = mape(LastValueBaseline().fit(tiny_dataset).predict(tiny_dataset), truth)
        assert prophet_mape > last_mape
