"""Shared fixtures: tiny simulated datasets reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ScalePreset
from repro.data import FeatureConfig, TrafficDataset
from repro.traffic import SimulationConfig, simulate

#: A micro preset for tests that must train models quickly.
MICRO_PRESET = ScalePreset(
    name="micro",
    num_days=6,
    width_factor=0.05,
    epochs=2,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
    max_steps_per_epoch=6,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _global_rng_guard():
    """Seed audit: no test may mutate numpy's *global* RNG.

    Everything in this codebase draws randomness from explicit
    ``np.random.default_rng(seed)`` generators; a test (or library code
    it exercises) calling ``np.random.seed`` / ``np.random.shuffle`` /
    module-level draws would couple test outcomes to execution order.
    """
    before = np.random.get_state()
    yield
    after = np.random.get_state()
    assert (
        before[0] == after[0]
        and np.array_equal(before[1], after[1])
        and before[2:] == after[2:]
    ), (
        "test mutated the global numpy RNG state; draw from a local "
        "np.random.default_rng(seed) generator instead"
    )


@pytest.fixture(scope="session")
def tiny_series():
    """Six days of simulated traffic (shared, treat as read-only)."""
    return simulate(SimulationConfig(num_days=6, seed=99))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_series):
    """Default-mask dataset over the tiny series (shared, read-only)."""
    return TrafficDataset(tiny_series, FeatureConfig(), seed=5)


@pytest.fixture(scope="session")
def micro_preset() -> ScalePreset:
    return MICRO_PRESET
