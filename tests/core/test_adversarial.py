"""Tests for the APOTS adversarial trainer."""

import numpy as np
import pytest

from repro.core import APOTSTrainer, Discriminator, TrainSpec, build_predictor, table1_spec
from repro.data import FeatureConfig, SplitIndices, TrafficDataset


def make_pair(dataset, conditional=True, seed=0, **spec_overrides):
    rng = np.random.default_rng(seed)
    predictor = build_predictor("F", dataset.config, spec=table1_spec("F", 0.05), rng=rng)
    disc = Discriminator(
        dataset.config, spec=table1_spec("F", 0.05), conditional=conditional, rng=rng
    )
    defaults = dict(epochs=2, adversarial_batch_size=8, max_steps_per_epoch=5, seed=seed)
    defaults.update(spec_overrides)
    return predictor, disc, TrainSpec(**defaults)


class TestFit:
    def test_history_populated(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.epochs_run == 2
        for field in (
            history.predictor_loss,
            history.mse_loss,
            history.adversarial_loss,
            history.discriminator_loss,
        ):
            assert len(field) == 2
            assert np.all(np.isfinite(field))

    def test_discriminator_probs_in_unit_interval(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        for p in history.discriminator_real_prob + history.discriminator_fake_prob:
            assert 0.0 <= p <= 1.0

    def test_mse_improves_with_training(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, epochs=6, max_steps_per_epoch=10)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.mse_loss[-1] < history.mse_loss[0]

    def test_unconditional_variant_runs(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, conditional=False)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.epochs_run == 2

    def test_saturating_loss_variant_runs(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, saturating_adv_loss=True)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert np.all(np.isfinite(history.adversarial_loss))

    def test_custom_loss_weights(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, mse_weight=1.0, adv_weight=0.0)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        np.testing.assert_allclose(
            history.predictor_loss, history.mse_loss, rtol=1e-9
        )

    def test_sets_eval_mode_after_fit(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert not predictor.training and not disc.training

    def test_deterministic(self, tiny_dataset):
        histories = []
        for _ in range(2):
            predictor, disc, spec = make_pair(tiny_dataset, seed=4)
            histories.append(APOTSTrainer(predictor, disc, spec).fit(tiny_dataset))
        np.testing.assert_allclose(histories[0].predictor_loss, histories[1].predictor_loss)

    def test_verbose_prints(self, tiny_dataset, capsys):
        predictor, disc, spec = make_pair(tiny_dataset, epochs=1)
        APOTSTrainer(predictor, disc, spec).fit(tiny_dataset, verbose=True)
        out = capsys.readouterr().out
        assert "epoch 1/1" in out and "real" in out

    def test_no_anchors_raises(self, tiny_series):
        config = FeatureConfig()
        n = tiny_series.num_steps - config.alpha - config.beta + 1
        scattered = np.arange(0, n, 5)
        rest = np.setdiff1d(np.arange(n), scattered)
        split = SplitIndices(
            train=scattered, validation=np.array([], dtype=int), test=rest[:10]
        )
        ds = TrafficDataset(tiny_series, config, split=split)
        predictor, disc, spec = make_pair(ds)
        with pytest.raises(RuntimeError, match="no adversarial anchors"):
            APOTSTrainer(predictor, disc, spec).fit(ds)


class TestAlphaRatio:
    def test_default_mse_weight_is_alpha(self, tiny_dataset):
        """The paper's footnote: MSE and adversarial terms at ratio alpha:1."""
        predictor, disc, spec = make_pair(tiny_dataset)
        assert spec.mse_weight is None  # default -> alpha at runtime
        trainer = APOTSTrainer(predictor, disc, spec)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        total, mse, adv = trainer._predictor_step(batch, tiny_dataset.config.alpha)
        assert total == pytest.approx(mse * tiny_dataset.config.alpha + adv, rel=1e-6)


class TestGradientHygiene:
    def test_predictor_step_does_not_pollute_discriminator(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        trainer = APOTSTrainer(predictor, disc, spec)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        trainer._predictor_step(batch, tiny_dataset.config.alpha)
        assert all(p.grad is None for p in disc.parameters())

    def test_discriminator_step_does_not_touch_predictor(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        trainer = APOTSTrainer(predictor, disc, spec)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        before = {name: p.data.copy() for name, p in predictor.named_parameters()}
        trainer._discriminator_step(batch, tiny_dataset.config.alpha)
        for name, param in predictor.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
