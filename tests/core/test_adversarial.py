"""Tests for the APOTS adversarial trainer."""

import json
import warnings

import numpy as np
import pytest

from repro.core import APOTSTrainer, Discriminator, TrainSpec, build_predictor, table1_spec
from repro.data import FeatureConfig, SplitIndices, TrafficDataset
from repro.obs import GanHealthWarning, RunRecorder, use_recorder, validate_run_dir


def make_pair(dataset, conditional=True, seed=0, **spec_overrides):
    rng = np.random.default_rng(seed)
    predictor = build_predictor("F", dataset.config, spec=table1_spec("F", 0.05), rng=rng)
    disc = Discriminator(
        dataset.config, spec=table1_spec("F", 0.05), conditional=conditional, rng=rng
    )
    defaults = dict(epochs=2, adversarial_batch_size=8, max_steps_per_epoch=5, seed=seed)
    defaults.update(spec_overrides)
    return predictor, disc, TrainSpec(**defaults)


class TestFit:
    def test_history_populated(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.epochs_run == 2
        for field in (
            history.predictor_loss,
            history.mse_loss,
            history.adversarial_loss,
            history.discriminator_loss,
        ):
            assert len(field) == 2
            assert np.all(np.isfinite(field))

    def test_discriminator_probs_in_unit_interval(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        for p in history.discriminator_real_prob + history.discriminator_fake_prob:
            assert 0.0 <= p <= 1.0

    def test_mse_improves_with_training(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, epochs=6, max_steps_per_epoch=10)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.mse_loss[-1] < history.mse_loss[0]

    def test_unconditional_variant_runs(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, conditional=False)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.epochs_run == 2

    def test_saturating_loss_variant_runs(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, saturating_adv_loss=True)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert np.all(np.isfinite(history.adversarial_loss))

    def test_custom_loss_weights(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, mse_weight=1.0, adv_weight=0.0)
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        np.testing.assert_allclose(
            history.predictor_loss, history.mse_loss, rtol=1e-9
        )

    def test_sets_eval_mode_after_fit(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert not predictor.training and not disc.training

    def test_deterministic(self, tiny_dataset):
        histories = []
        for _ in range(2):
            predictor, disc, spec = make_pair(tiny_dataset, seed=4)
            histories.append(APOTSTrainer(predictor, disc, spec).fit(tiny_dataset))
        np.testing.assert_allclose(histories[0].predictor_loss, histories[1].predictor_loss)

    def test_verbose_prints(self, tiny_dataset, capsys):
        predictor, disc, spec = make_pair(tiny_dataset, epochs=1)
        APOTSTrainer(predictor, disc, spec).fit(tiny_dataset, verbose=True)
        out = capsys.readouterr().out
        assert "epoch 1/1" in out and "real" in out

    def test_no_anchors_raises(self, tiny_series):
        config = FeatureConfig()
        n = tiny_series.num_steps - config.alpha - config.beta + 1
        scattered = np.arange(0, n, 5)
        rest = np.setdiff1d(np.arange(n), scattered)
        split = SplitIndices(
            train=scattered, validation=np.array([], dtype=int), test=rest[:10]
        )
        ds = TrafficDataset(tiny_series, config, split=split)
        predictor, disc, spec = make_pair(ds)
        with pytest.raises(RuntimeError, match="no adversarial anchors"):
            APOTSTrainer(predictor, disc, spec).fit(ds)


class TestEmptyEpochGuards:
    """Regression: np.mean([]) used to warn and poison the history."""

    def test_zero_discriminator_steps_no_warning(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, discriminator_steps=0, epochs=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        # P trained normally; the untouched D series are NaN, not warnings.
        assert np.all(np.isfinite(history.predictor_loss))
        assert np.all(np.isnan(history.discriminator_loss))
        assert np.all(np.isnan(history.discriminator_real_prob))
        assert np.all(np.isnan(history.discriminator_grad_norm))

    def test_zero_steps_per_epoch_no_warning(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset, max_steps_per_epoch=0, epochs=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        assert history.epochs_run == 2
        assert np.all(np.isnan(history.predictor_loss))
        assert np.all(np.isnan(history.mse_loss))


class TestObservability:
    def test_fit_emits_valid_run_log(self, tiny_dataset, tmp_path):
        predictor, disc, spec = make_pair(tiny_dataset)
        recorder = RunRecorder(tmp_path / "run")
        history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset, recorder=recorder)
        recorder.close()
        assert validate_run_dir(recorder.directory) == []
        events = [
            json.loads(line)
            for line in recorder.events_path.read_text().splitlines()
            if line.strip()
        ]
        epochs = [e for e in events if e["kind"] == "adv_epoch"]
        assert len(epochs) == history.epochs_run == 2
        for event in epochs:
            for signal in (
                "predictor_loss",
                "discriminator_loss",
                "discriminator_real_prob",
                "discriminator_fake_prob",
                "predictor_grad_norm",
                "discriminator_grad_norm",
            ):
                assert np.isfinite(event[signal])
        assert any(e["kind"] == "d_step" for e in events)
        assert any(e["kind"] == "p_step" for e in events)
        manifest = json.loads(recorder.manifest_path.read_text())
        assert manifest["trainer"] == "APOTSTrainer"
        assert manifest["seed"] == spec.seed
        assert set(manifest["sections"]) >= {"d_step", "p_step"}

    def test_ambient_recorder_used_when_none_passed(self, tiny_dataset, tmp_path):
        predictor, disc, spec = make_pair(tiny_dataset, epochs=1)
        recorder = RunRecorder(tmp_path / "run")
        with use_recorder(recorder):
            APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
        recorder.close()
        assert recorder.num_events > 0

    def test_history_matches_unobserved_run(self, tiny_dataset, tmp_path):
        """Attaching a recorder must not change the training trajectory."""
        histories = []
        for attach in (False, True):
            predictor, disc, spec = make_pair(tiny_dataset, seed=3)
            recorder = RunRecorder(tmp_path / f"run-{attach}") if attach else None
            histories.append(
                APOTSTrainer(predictor, disc, spec).fit(tiny_dataset, recorder=recorder)
            )
            if recorder is not None:
                recorder.close()
        np.testing.assert_allclose(histories[0].predictor_loss, histories[1].predictor_loss)
        np.testing.assert_allclose(
            histories[0].predictor_grad_norm, histories[1].predictor_grad_norm
        )

    def test_nan_gradient_triggers_monitor_not_adam_corruption(self, tiny_dataset, tmp_path):
        """Acceptance: a poisoned gradient raises the non-finite monitor
        and the optimiser state stays finite instead of absorbing NaNs."""
        predictor, disc, spec = make_pair(tiny_dataset, epochs=1)
        # Poison one predictor weight: the forward goes NaN, so losses
        # and gradients do too.
        predictor.parameters()[0].data[...] = np.nan
        trainer = APOTSTrainer(predictor, disc, spec)
        recorder = RunRecorder(tmp_path / "run")
        with pytest.warns(GanHealthWarning):
            trainer.fit(tiny_dataset, recorder=recorder)
        recorder.close()
        codes = set(recorder.warning_counts)
        assert "non_finite_grad_norm" in codes
        assert "non_finite_loss" in codes
        # The poisoned updates were skipped: Adam's moments never saw NaN.
        for moments in (trainer.p_optimizer._m, trainer.p_optimizer._v):
            for m in moments:
                assert np.all(np.isfinite(m))


class TestAlphaRatio:
    def test_default_mse_weight_is_alpha(self, tiny_dataset):
        """The paper's footnote: MSE and adversarial terms at ratio alpha:1."""
        predictor, disc, spec = make_pair(tiny_dataset)
        assert spec.mse_weight is None  # default -> alpha at runtime
        trainer = APOTSTrainer(predictor, disc, spec)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        total, mse, adv, _, _ = trainer._predictor_step(batch, tiny_dataset.config.alpha)
        assert total == pytest.approx(mse * tiny_dataset.config.alpha + adv, rel=1e-6)


class TestGradientHygiene:
    def test_predictor_step_does_not_pollute_discriminator(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        trainer = APOTSTrainer(predictor, disc, spec)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        trainer._predictor_step(batch, tiny_dataset.config.alpha)
        assert all(p.grad is None for p in disc.parameters())

    def test_discriminator_step_does_not_touch_predictor(self, tiny_dataset):
        predictor, disc, spec = make_pair(tiny_dataset)
        trainer = APOTSTrainer(predictor, disc, spec)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        before = {name: p.data.copy() for name, p in predictor.named_parameters()}
        trainer._discriminator_step(batch, tiny_dataset.config.alpha)
        for name, param in predictor.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
