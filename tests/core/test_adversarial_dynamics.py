"""Behavioural tests of the adversarial game beyond one-step mechanics."""

import numpy as np
import pytest

from repro.core import APOTSTrainer, Discriminator, TrainSpec, build_predictor, table1_spec


def make_trainer(dataset, epochs=6, seed=0, **overrides):
    rng = np.random.default_rng(seed)
    spec = table1_spec("F", 0.05)
    predictor = build_predictor("F", dataset.config, spec=spec, rng=rng)
    disc = Discriminator(dataset.config, spec=spec, conditional=False, rng=rng)
    defaults = dict(
        epochs=epochs, adversarial_batch_size=16, max_steps_per_epoch=12, seed=seed
    )
    defaults.update(overrides)
    return APOTSTrainer(predictor, disc, TrainSpec(**defaults))


class TestDiscriminatorLearnsTheTask:
    def test_d_separates_real_from_untrained_predictor(self, tiny_dataset):
        """Early in training, D should tell noise-like predictions from
        real smooth speed sequences."""
        trainer = make_trainer(tiny_dataset, epochs=3)
        trainer.fit(tiny_dataset)
        anchors = tiny_dataset.rollout_anchors("train")[:64]
        batch = tiny_dataset.rollout_batch(anchors)
        alpha = tiny_dataset.config.alpha
        real = batch.real_sequences(alpha)
        rng = np.random.default_rng(1)
        noise = rng.random(real.shape)  # plainly fake sequences
        real_prob = trainer.discriminator.probability(real).mean()
        noise_prob = trainer.discriminator.probability(noise).mean()
        assert real_prob > noise_prob

    def test_game_stays_balanced(self, tiny_dataset):
        """Neither player should collapse: fake prob away from 0 and 1."""
        trainer = make_trainer(tiny_dataset, epochs=6)
        history = trainer.fit(tiny_dataset)
        final_fake = history.discriminator_fake_prob[-1]
        assert 0.02 < final_fake < 0.98

    def test_more_d_steps_strengthen_discriminator(self, tiny_dataset):
        weak = make_trainer(tiny_dataset, epochs=3, discriminator_steps=1, seed=2)
        strong = make_trainer(tiny_dataset, epochs=3, discriminator_steps=3, seed=2)
        weak_hist = weak.fit(tiny_dataset)
        strong_hist = strong.fit(tiny_dataset)
        # A D trained 3x as often should judge fakes at least as harshly.
        assert strong_hist.discriminator_fake_prob[-1] <= weak_hist.discriminator_fake_prob[-1] + 0.1


class TestRolloutConsistency:
    def test_rollout_predictions_match_plain_forward(self, tiny_dataset):
        """The rolled sequence is just the predictor applied per window."""
        trainer = make_trainer(tiny_dataset, epochs=1)
        trainer.fit(tiny_dataset)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        alpha = tiny_dataset.config.alpha
        _, sequences = trainer._predict_sequences(batch, alpha)
        direct = trainer.predictor.predict(
            batch.group_images, batch.group_day_types, batch.group_flat
        )
        np.testing.assert_allclose(
            sequences.data.reshape(-1), direct, rtol=1e-8, atol=1e-10
        )

    def test_anchor_prediction_is_last_sequence_entry(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset, epochs=1)
        trainer.fit(tiny_dataset)
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        alpha = tiny_dataset.config.alpha
        _, sequences = trainer._predict_sequences(batch, alpha)
        anchor_batch = tiny_dataset.batch(anchors)
        direct = trainer.predictor.predict(
            anchor_batch.images, anchor_batch.day_types, anchor_batch.flat
        )
        np.testing.assert_allclose(sequences.data[:, -1], direct, rtol=1e-8, atol=1e-10)
