"""Unit + determinism tests for input-space adversarial training.

The three guarantees everything else rests on:

* **no silent behaviour change** — ``robust_fraction=0.0`` (the
  default) must be bitwise-identical to the pre-augmenter trainers; we
  additionally pin that the zero path never even *constructs* an
  augmenter;
* **seed determinism** — the augmenter is a pure function of
  ``(seed, epoch, step)`` and the batch, so repeated calls and repeated
  fits agree bitwise;
* **worker-count invariance** — augmentation happens parent-side, so
  adversarially-trained ``DataParallelTrainer`` runs match ``workers=1``
  to the same tolerance as clean training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    APOTSTrainer,
    AdversarialAugmenter,
    DataParallelTrainer,
    Discriminator,
    SupervisedTrainer,
    TrainSpec,
    build_predictor,
    table1_spec,
)
from repro.core import adversarial_training

#: Shard summation-order drift only (same bound as clean training).
TOLERANCE = 1e-9


def _predictor(dataset, seed=0):
    return build_predictor(
        "F", dataset.config, spec=table1_spec("F", 0.05), rng=np.random.default_rng(seed)
    )


def _spec(seed=0, **overrides):
    defaults = dict(
        epochs=2,
        batch_size=64,
        adversarial_batch_size=8,
        max_steps_per_epoch=4,
        robust_fraction=0.5,
        adv_epsilon_kmh=5.0,
        seed=seed,
    )
    defaults.update(overrides)
    return TrainSpec(**defaults)


@pytest.fixture
def augmenter(tiny_dataset):
    predictor = _predictor(tiny_dataset)
    return AdversarialAugmenter.from_spec(
        predictor, tiny_dataset.features.scalers, _spec()
    )


class TestValidation:
    def test_spec_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="robust_fraction"):
            TrainSpec(robust_fraction=1.5)

    def test_spec_rejects_bad_schedule(self):
        with pytest.raises(ValueError, match="epsilon_schedule"):
            TrainSpec(epsilon_schedule="exponential")

    def test_spec_rejects_bad_attack(self):
        with pytest.raises(ValueError, match="adv_attack"):
            TrainSpec(adv_attack="spsa")  # eval-only attack

    def test_augmenter_rejects_zero_fraction(self, tiny_dataset):
        predictor = _predictor(tiny_dataset)
        with pytest.raises(ValueError, match="robust_fraction"):
            AdversarialAugmenter(
                predictor,
                tiny_dataset.features.scalers,
                robust_fraction=0.0,
                epsilon_kmh=5.0,
                total_epochs=2,
            )

    def test_augmenter_rejects_missing_scalers(self, tiny_dataset):
        with pytest.raises(ValueError, match="scalers"):
            AdversarialAugmenter(
                _predictor(tiny_dataset),
                None,
                robust_fraction=0.5,
                epsilon_kmh=5.0,
                total_epochs=2,
            )


class TestEpsilonSchedule:
    def test_constant(self, augmenter):
        assert augmenter.epsilon_at(0) == augmenter.epsilon_at(1) == 5.0

    def test_linear_ramps_to_full_budget(self, tiny_dataset):
        aug = AdversarialAugmenter.from_spec(
            _predictor(tiny_dataset),
            tiny_dataset.features.scalers,
            _spec(epochs=4, epsilon_schedule="linear"),
        )
        assert aug.epsilon_at(0) == pytest.approx(1.25)
        assert aug.epsilon_at(3) == pytest.approx(5.0)
        # Past the nominal end (early-stopped restarts) it saturates.
        assert aug.epsilon_at(10) == pytest.approx(5.0)


class TestAugmentBatch:
    def test_perturbs_exactly_the_selected_fraction(self, tiny_dataset, augmenter):
        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:16])
        out, info = augmenter.augment_batch(batch, epoch=0, step=0)
        assert info.num_perturbed == 8
        assert info.num_samples == 16
        changed = [
            i for i in range(16) if not np.array_equal(out.images[i], batch.images[i])
        ]
        assert len(changed) == info.num_perturbed

    def test_mixed_batch_preserves_clean_rows_and_targets(self, tiny_dataset, augmenter):
        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:16])
        out, _ = augmenter.augment_batch(batch, epoch=0, step=0)
        untouched = [
            i for i in range(16) if np.array_equal(out.images[i], batch.images[i])
        ]
        assert untouched  # it is a *mixed* batch
        assert np.array_equal(out.targets, batch.targets)
        assert np.array_equal(out.day_types, batch.day_types)
        assert np.array_equal(out.indices, batch.indices)

    def test_flat_rows_rebuilt_consistently(self, tiny_dataset, augmenter):
        from repro.attacks.base import flatten_windows

        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:16])
        out, _ = augmenter.augment_batch(batch, epoch=0, step=0)
        assert np.array_equal(out.flat, flatten_windows(out.images, out.day_types))

    def test_tiny_fraction_still_perturbs_one_sample(self, tiny_dataset):
        aug = AdversarialAugmenter.from_spec(
            _predictor(tiny_dataset),
            tiny_dataset.features.scalers,
            _spec(robust_fraction=0.01),
        )
        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:8])
        _, info = aug.augment_batch(batch, epoch=0, step=0)
        assert info.num_perturbed == 1

    def test_same_seed_and_step_is_bitwise_repeatable(self, tiny_dataset, augmenter):
        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:16])
        first, _ = augmenter.augment_batch(batch, epoch=0, step=3)
        second, _ = augmenter.augment_batch(batch, epoch=0, step=3)
        assert np.array_equal(first.images, second.images)

    def test_different_steps_differ(self, tiny_dataset, augmenter):
        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:16])
        first, _ = augmenter.augment_batch(batch, epoch=0, step=0)
        second, _ = augmenter.augment_batch(batch, epoch=0, step=1)
        assert not np.array_equal(first.images, second.images)

    def test_perturbation_respects_budget(self, tiny_dataset, augmenter):
        from repro.attacks.base import speed_rows_kmh

        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:16])
        out, info = augmenter.augment_batch(batch, epoch=0, step=0)
        num_roads = augmenter.predictor.features.num_roads
        scalers = tiny_dataset.features.scalers
        before = speed_rows_kmh(batch.images, scalers, num_roads)
        after = speed_rows_kmh(out.images, scalers, num_roads)
        assert np.max(np.abs(after - before)) <= 5.0 + 1e-9
        assert info.max_abs_delta_kmh <= 5.0 + 1e-9

    def test_pgd_attack_varies_across_steps(self, tiny_dataset):
        # PGDAttack reseeds from its own `seed` on every perturb call;
        # the augmenter must derive a fresh attack seed per step or the
        # random starts repeat.
        aug = AdversarialAugmenter.from_spec(
            _predictor(tiny_dataset),
            tiny_dataset.features.scalers,
            _spec(adv_attack="pgd", robust_fraction=1.0),
        )
        batch = tiny_dataset.batch(tiny_dataset.subset("train")[:8])
        first, _ = aug.augment_batch(batch, epoch=0, step=0)
        second, _ = aug.augment_batch(batch, epoch=0, step=1)
        assert not np.array_equal(first.images, second.images)


class TestAugmentRollout:
    def test_whole_anchor_groups_perturbed(self, tiny_dataset, augmenter):
        alpha = tiny_dataset.config.alpha
        anchors = tiny_dataset.rollout_anchors("train")[:8]
        batch = tiny_dataset.rollout_batch(anchors)
        out, info = augmenter.augment_rollout(batch, alpha, epoch=0, step=0)
        assert info.num_perturbed == 4 * alpha  # half of 8 anchors
        # Changed rows come in whole alpha-sized anchor groups.
        changed_rows = {
            i
            for i in range(batch.group_images.shape[0])
            if not np.array_equal(out.group_images[i], batch.group_images[i])
        }
        groups = {row // alpha for row in changed_rows}
        expected = {row for g in groups for row in range(g * alpha, (g + 1) * alpha)}
        assert changed_rows == expected
        assert np.array_equal(out.group_targets, batch.group_targets)
        assert np.array_equal(out.condition, batch.condition)


class TestZeroFractionBitwisePin:
    def test_supervised_default_spec_never_builds_augmenter(
        self, tiny_dataset, monkeypatch
    ):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("augmenter constructed on the clean path")

        monkeypatch.setattr(AdversarialAugmenter, "from_spec", boom)
        monkeypatch.setattr(adversarial_training.AdversarialAugmenter, "from_spec", boom)
        spec = _spec(robust_fraction=0.0)
        SupervisedTrainer(_predictor(tiny_dataset), spec).fit(tiny_dataset)

    def test_gan_default_spec_never_builds_augmenter(self, tiny_dataset, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("augmenter constructed on the clean path")

        monkeypatch.setattr(adversarial_training.AdversarialAugmenter, "from_spec", boom)
        spec = _spec(epochs=1, robust_fraction=0.0)
        predictor = _predictor(tiny_dataset)
        disc = Discriminator(
            tiny_dataset.config, spec=table1_spec("F", 0.05), rng=np.random.default_rng(1)
        )
        APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)

    def test_zero_fraction_matches_clean_weights_bitwise(self, tiny_dataset):
        clean_spec = TrainSpec(
            epochs=2, batch_size=64, max_steps_per_epoch=4, seed=0
        )
        zero_spec = _spec(robust_fraction=0.0)
        a = _predictor(tiny_dataset)
        b = _predictor(tiny_dataset)
        hist_a = SupervisedTrainer(a, clean_spec).fit(tiny_dataset)
        hist_b = SupervisedTrainer(b, zero_spec).fit(tiny_dataset)
        assert hist_a.train_loss == hist_b.train_loss
        for ours, theirs in zip(a.parameters(), b.parameters()):
            assert np.array_equal(ours.data, theirs.data)


class TestAdversarialFitDeterminism:
    def _fit(self, trainer_cls, dataset, seed=0, **kwargs):
        predictor = _predictor(dataset, seed=seed)
        trainer = trainer_cls(predictor, _spec(seed=seed), **kwargs)
        history = trainer.fit(dataset)
        return predictor, history

    def test_repeated_fits_bitwise_identical(self, tiny_dataset):
        a, hist_a = self._fit(SupervisedTrainer, tiny_dataset)
        b, hist_b = self._fit(SupervisedTrainer, tiny_dataset)
        assert hist_a.train_loss == hist_b.train_loss
        for ours, theirs in zip(a.parameters(), b.parameters()):
            assert np.array_equal(ours.data, theirs.data)

    def test_workers_1_bitwise_matches_serial(self, tiny_dataset):
        serial_pred, serial_hist = self._fit(SupervisedTrainer, tiny_dataset)
        dp_pred, dp_hist = self._fit(DataParallelTrainer, tiny_dataset, workers=1)
        assert serial_hist.train_loss == dp_hist.train_loss
        for ours, theirs in zip(serial_pred.parameters(), dp_pred.parameters()):
            assert np.array_equal(ours.data, theirs.data)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_n_matches_serial_within_tolerance(self, tiny_dataset, workers):
        serial_pred, serial_hist = self._fit(SupervisedTrainer, tiny_dataset)
        dp_pred, dp_hist = self._fit(DataParallelTrainer, tiny_dataset, workers=workers)
        np.testing.assert_allclose(
            dp_hist.train_loss, serial_hist.train_loss, rtol=0, atol=TOLERANCE
        )
        for ours, theirs in zip(serial_pred.parameters(), dp_pred.parameters()):
            np.testing.assert_allclose(theirs.data, ours.data, rtol=0, atol=TOLERANCE)

    def test_gan_fit_with_augmentation_deterministic(self, tiny_dataset):
        def run():
            predictor = _predictor(tiny_dataset)
            disc = Discriminator(
                tiny_dataset.config,
                spec=table1_spec("F", 0.05),
                rng=np.random.default_rng(1),
            )
            spec = _spec(epochs=1)
            history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
            return predictor, history

        a, hist_a = run()
        b, hist_b = run()
        assert hist_a.predictor_loss == hist_b.predictor_loss
        for ours, theirs in zip(a.parameters(), b.parameters()):
            assert np.array_equal(ours.data, theirs.data)


class TestMonitorIntegration:
    def test_robust_divergence_fires_on_sustained_blowup(self):
        from repro.obs import TrainingMonitor
        from repro.obs.monitors import GanHealthWarning, MonitorConfig

        monitor = TrainingMonitor(config=MonitorConfig(patience=3))
        codes: list[str] = []
        with pytest.warns(GanHealthWarning, match="robust_divergence"):
            for step in range(3):
                codes += monitor.observe_robust(
                    step, clean_loss=0.01, robust_loss=10.0
                )
        assert codes == ["robust_divergence"]
        # Episode semantics: staying diverged does not re-fire...
        assert monitor.observe_robust(3, clean_loss=0.01, robust_loss=10.0) == []
        # ...until the condition clears and recurs for `patience` steps.
        assert monitor.observe_robust(4, clean_loss=0.01, robust_loss=0.01) == []
        with pytest.warns(GanHealthWarning, match="robust_divergence"):
            fired = []
            for step in range(5, 8):
                fired += monitor.observe_robust(step, clean_loss=0.01, robust_loss=10.0)
        assert fired == ["robust_divergence"]

    def test_healthy_ratio_never_fires(self):
        from repro.obs import TrainingMonitor
        from repro.obs.monitors import MonitorConfig

        monitor = TrainingMonitor(config=MonitorConfig(patience=2))
        for step in range(10):
            assert monitor.observe_robust(step, clean_loss=0.1, robust_loss=0.5) == []
        assert monitor.counts == {}

    def test_non_finite_robust_loss_flagged(self):
        from repro.obs import TrainingMonitor

        monitor = TrainingMonitor(emit_python_warnings=False)
        codes = monitor.observe_robust(0, clean_loss=0.1, robust_loss=float("nan"))
        assert codes == ["non_finite_loss"]
