"""Tests for the attention predictor extension (kind "A")."""

import numpy as np
import pytest

from repro import nn
from repro.core import build_predictor, table1_spec
from repro.core.attention import AttentionPredictor, SelfAttention
from repro.data import FeatureConfig


@pytest.fixture(scope="module")
def features():
    return FeatureConfig()


def inputs(features, batch=4, seed=1):
    rng = np.random.default_rng(seed)
    images = rng.random((batch, features.image_rows, features.alpha))
    day = rng.random((batch, 4))
    flat = rng.random((batch, features.flat_dim))
    return images, day, flat


class TestSelfAttention:
    def test_output_shape(self):
        attention = SelfAttention(6, 8, np.random.default_rng(0))
        x = nn.Tensor(np.random.default_rng(1).normal(size=(3, 5, 6)))
        assert attention(x).shape == (3, 5, 8)

    def test_weights_are_probabilities(self):
        attention = SelfAttention(6, 8, np.random.default_rng(0))
        weights = attention.attention_weights(np.random.default_rng(2).normal(size=(2, 5, 6)))
        assert weights.shape == (2, 5, 5)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-10)
        assert np.all(weights >= 0.0)

    def test_gradients_flow(self):
        attention = SelfAttention(4, 4, np.random.default_rng(0))
        x = nn.Tensor(np.random.default_rng(3).normal(size=(2, 3, 4)), requires_grad=True)
        (attention(x) ** 2).sum().backward()
        assert x.grad is not None
        for _, p in attention.named_parameters():
            assert p.grad is not None

    def test_gradcheck(self):
        attention = SelfAttention(2, 2, np.random.default_rng(4))
        x = nn.Tensor(np.random.default_rng(5).normal(size=(1, 3, 2)), requires_grad=True)
        nn.check_gradients(
            lambda: (attention(x) ** 2).sum(),
            [x] + attention.parameters(),
            atol=1e-3,
            rtol=1e-3,
        )


class TestAttentionPredictor:
    def test_registered_as_kind_a(self, features):
        model = build_predictor("A", features, spec=table1_spec("A", 0.05))
        assert isinstance(model, AttentionPredictor)
        assert model.kind == "A"

    def test_forward_shape(self, features):
        model = build_predictor("A", features, spec=table1_spec("A", 0.05))
        img, day, flat = inputs(features)
        assert model.predict_arrays(img, day, flat).shape == (4,)

    def test_all_parameters_receive_gradients(self, features):
        model = build_predictor("A", features, spec=table1_spec("A", 0.05))
        img, day, flat = inputs(features)
        out = model.predict_arrays(img, day, flat)
        (out * out).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_trains_via_facade(self, tiny_dataset, micro_preset):
        from repro import APOTS

        model = APOTS(predictor="A", adversarial=False, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        assert np.isfinite(model.evaluate(tiny_dataset).mape)

    def test_adversarial_training_works(self, tiny_dataset, micro_preset):
        from repro import APOTS

        model = APOTS(predictor="A", adversarial=True, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        assert model.history.epochs_run > 0

    def test_batched_predict_matches_direct(self, features):
        model = build_predictor("A", features, spec=table1_spec("A", 0.05))
        img, day, flat = inputs(features, batch=10)
        direct = model.predict_arrays(img, day, flat).data
        batched = model.predict(img, day, flat, batch_size=3)
        np.testing.assert_allclose(direct, batched, rtol=1e-10)
