"""End-to-end bitwise parity of ``compile=True`` training and attacks.

``spec.compile`` swaps the hot loops onto tape replay
(:mod:`repro.nn.compile`); the contract is that nothing observable
changes — loss histories, final weights and attack perturbations must
be *bitwise* identical to the eager run, not merely close.
"""

import numpy as np
import pytest

from repro.core import APOTSTrainer, Discriminator, TrainSpec, build_predictor, table1_spec
from repro.core.trainer import SupervisedTrainer


def state_bytes(module):
    return {k: (v.shape, v.tobytes()) for k, v in module.state_dict().items()}


def history_bytes(history):
    return repr(vars(history))


def fresh_predictor(kind, dataset, seed=0):
    rng = np.random.default_rng(seed)
    return build_predictor(kind, dataset.config, spec=table1_spec(kind, 0.05), rng=rng)


def fresh_pair(kind, dataset, conditional, seed=0):
    rng = np.random.default_rng(seed)
    predictor = build_predictor(kind, dataset.config, spec=table1_spec(kind, 0.05), rng=rng)
    disc = Discriminator(
        dataset.config, spec=table1_spec(kind, 0.05), conditional=conditional, rng=rng
    )
    return predictor, disc


class TestSupervisedParity:
    @pytest.mark.parametrize("kind", ["F", "L"])
    def test_compiled_fit_is_bitwise_identical(self, tiny_dataset, kind):
        results = {}
        for compiled in (False, True):
            predictor = fresh_predictor(kind, tiny_dataset)
            spec = TrainSpec(
                epochs=2, batch_size=32, max_steps_per_epoch=4, compile=compiled, seed=3
            )
            trainer = SupervisedTrainer(predictor, spec)
            history = trainer.fit(tiny_dataset)
            results[compiled] = (history_bytes(history), state_bytes(predictor))
            if compiled:
                assert trainer._compiled_step is not None
                assert trainer._compiled_step.stats["replay"] > 0
        assert results[False] == results[True]


class TestAPOTSParity:
    @pytest.mark.parametrize(
        "kind,conditional", [("F", True), ("F", False), ("L", True)]
    )
    def test_compiled_fit_is_bitwise_identical(self, tiny_dataset, kind, conditional):
        results = {}
        for compiled in (False, True):
            predictor, disc = fresh_pair(kind, tiny_dataset, conditional)
            spec = TrainSpec(
                epochs=2,
                adversarial_batch_size=8,
                max_steps_per_epoch=4,
                discriminator_steps=2,
                compile=compiled,
                seed=3,
            )
            trainer = APOTSTrainer(predictor, disc, spec)
            history = trainer.fit(tiny_dataset)
            results[compiled] = (
                history_bytes(history),
                state_bytes(predictor),
                state_bytes(disc),
            )
            if compiled:
                assert trainer._cf_roll.stats["replay"] > 0
                assert trainer._cf_dstep.stats["replay"] > 0
                assert trainer._cf_ploss.stats["replay"] > 0
        assert results[False] == results[True]


class TestAugmentedParity:
    @pytest.mark.parametrize("attack", ["fgsm", "pgd"])
    def test_robust_supervised_fit_is_bitwise_identical(self, tiny_dataset, attack):
        results = {}
        for compiled in (False, True):
            predictor = fresh_predictor("F", tiny_dataset)
            spec = TrainSpec(
                epochs=2,
                batch_size=16,
                max_steps_per_epoch=3,
                robust_fraction=0.5,
                adv_attack=attack,
                adv_pgd_steps=2,
                compile=compiled,
                seed=7,
            )
            trainer = SupervisedTrainer(predictor, spec)
            history = trainer.fit(tiny_dataset)
            results[compiled] = (history_bytes(history), state_bytes(predictor))
        assert results[False] == results[True]

    def test_robust_apots_fit_is_bitwise_identical(self, tiny_dataset):
        results = {}
        for compiled in (False, True):
            predictor, disc = fresh_pair("F", tiny_dataset, conditional=True)
            spec = TrainSpec(
                epochs=2,
                adversarial_batch_size=8,
                max_steps_per_epoch=3,
                robust_fraction=0.5,
                adv_attack="fgsm",
                compile=compiled,
                seed=7,
            )
            history = APOTSTrainer(predictor, disc, spec).fit(tiny_dataset)
            results[compiled] = (
                history_bytes(history),
                state_bytes(predictor),
                state_bytes(disc),
            )
        assert results[False] == results[True]
