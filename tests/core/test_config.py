"""Tests for Table I specs, TrainSpec and presets."""

import pytest

from repro.core import PRESETS, ModelSpec, ScalePreset, TrainSpec, table1_spec


class TestModelSpec:
    def test_table1_defaults(self):
        spec = table1_spec("F")
        assert spec.fc_widths == [512, 128, 256, 64]
        assert spec.lstm_widths == [512, 512]
        assert spec.cnn_channels == [128, 32, 64]
        assert spec.cnn_kernels == [(3, 3), (1, 1), (3, 3)]

    def test_discriminator_is_five_layers(self):
        # Four hidden widths + output = the paper's 5 FC layers.
        assert len(table1_spec("H").discriminator_widths) == 4

    def test_scaling_halves_widths(self):
        spec = table1_spec("L", width_factor=0.5)
        assert spec.lstm_widths == [256, 256]

    def test_scaling_floor(self):
        spec = table1_spec("C", width_factor=0.001)
        assert all(w >= 4 for w in spec.cnn_channels)
        assert all(w >= 8 for w in spec.fc_widths)

    def test_scale_one_returns_same(self):
        spec = ModelSpec(kind="F")
        assert spec.scaled(1.0) is spec

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown predictor kind"):
            ModelSpec(kind="Z")

    def test_kernel_channel_mismatch(self):
        with pytest.raises(ValueError):
            ModelSpec(kind="C", cnn_channels=[8], cnn_kernels=[(3, 3), (1, 1)])


class TestTrainSpec:
    def test_paper_learning_rate(self):
        assert TrainSpec().learning_rate == 0.001

    @pytest.mark.parametrize(
        "overrides",
        [{"learning_rate": 0.0}, {"epochs": 0}, {"batch_size": 0}, {"adversarial_batch_size": 0}],
    )
    def test_invalid(self, overrides):
        with pytest.raises(ValueError):
            TrainSpec(**overrides)


class TestPresets:
    def test_all_presets_present(self):
        assert set(PRESETS) == {"smoke", "medium", "paper"}

    def test_paper_preset_is_faithful(self):
        preset = PRESETS["paper"]
        assert preset.num_days == 122
        assert preset.width_factor == 1.0

    def test_train_spec_adversarial_epochs(self):
        preset = ScalePreset(
            name="x", num_days=5, width_factor=0.1, epochs=7, adversarial_epochs=3
        )
        assert preset.train_spec(adversarial=False).epochs == 7
        assert preset.train_spec(adversarial=True).epochs == 3

    def test_train_spec_propagates_seed(self):
        assert PRESETS["smoke"].train_spec(seed=11).seed == 11
