"""Serial-equivalence pin for :class:`repro.core.DataParallelTrainer`.

The whole value of the data-parallel trainer is that it changes *where*
gradients are computed without changing *what* is computed: the weighted
shard-gradient average equals the full-batch gradient, so the trainer
must track :class:`SupervisedTrainer` step-for-step.  ``workers=1`` is
literally the parent class's code path and is asserted bitwise;
``workers>1`` reorders floating-point summation across shard boundaries
and is held to a tight tolerance instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DataParallelTrainer,
    SupervisedTrainer,
    TrainSpec,
    build_predictor,
    table1_spec,
)

#: Summation-order drift only: shards re-associate the same per-sample
#: terms, so anything beyond a few ulps of the loss scale is a bug.
TOLERANCE = 1e-9


def _predictor(dataset, seed=0):
    return build_predictor(
        "F", dataset.config, spec=table1_spec("F", 0.05), rng=np.random.default_rng(seed)
    )


def _spec(epochs=2, seed=0):
    return TrainSpec(epochs=epochs, batch_size=64, max_steps_per_epoch=6, seed=seed)


def _fit(trainer_cls, dataset, seed=0, **kwargs):
    predictor = _predictor(dataset, seed=seed)
    trainer = trainer_cls(predictor, _spec(seed=seed), **kwargs)
    history = trainer.fit(dataset)
    return predictor, history


class TestSerialEquivalence:
    def test_workers_1_is_bitwise_serial(self, tiny_dataset):
        serial_pred, serial_hist = _fit(SupervisedTrainer, tiny_dataset)
        dp_pred, dp_hist = _fit(DataParallelTrainer, tiny_dataset, workers=1)
        assert serial_hist.train_loss == dp_hist.train_loss
        assert serial_hist.grad_norm == dp_hist.grad_norm
        for ours, theirs in zip(serial_pred.parameters(), dp_pred.parameters()):
            assert np.array_equal(ours.data, theirs.data)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_serial_step_for_step(self, tiny_dataset, workers):
        serial_pred, serial_hist = _fit(SupervisedTrainer, tiny_dataset)
        dp_pred, dp_hist = _fit(DataParallelTrainer, tiny_dataset, workers=workers)
        np.testing.assert_allclose(
            dp_hist.train_loss, serial_hist.train_loss, rtol=0, atol=TOLERANCE
        )
        np.testing.assert_allclose(
            dp_hist.grad_norm, serial_hist.grad_norm, rtol=0, atol=TOLERANCE
        )
        np.testing.assert_allclose(
            dp_hist.validation_loss, serial_hist.validation_loss, rtol=0, atol=TOLERANCE
        )
        for ours, theirs in zip(serial_pred.parameters(), dp_pred.parameters()):
            np.testing.assert_allclose(theirs.data, ours.data, rtol=0, atol=TOLERANCE)

    def test_parallel_predictions_match_serial(self, tiny_dataset):
        serial_pred, _ = _fit(SupervisedTrainer, tiny_dataset)
        dp_pred, _ = _fit(DataParallelTrainer, tiny_dataset, workers=2)
        indices = tiny_dataset.subset("validation")[:64]
        batch = tiny_dataset.batch(indices)
        serial_out = serial_pred.predict_arrays(batch.images, batch.day_types, batch.flat)
        dp_out = dp_pred.predict_arrays(batch.images, batch.day_types, batch.flat)
        np.testing.assert_allclose(dp_out.data, serial_out.data, rtol=0, atol=1e-7)


class TestLifecycle:
    def test_workers_validation(self, tiny_dataset):
        with pytest.raises(ValueError, match="workers"):
            DataParallelTrainer(_predictor(tiny_dataset), _spec(), workers=-1)

    def test_group_closed_after_fit(self, tiny_dataset):
        trainer = DataParallelTrainer(_predictor(tiny_dataset), _spec(epochs=1), workers=2)
        trainer.fit(tiny_dataset)
        assert trainer._group is None

    def test_refit_rebuilds_group(self, tiny_dataset):
        trainer = DataParallelTrainer(_predictor(tiny_dataset), _spec(epochs=1), workers=2)
        first = trainer.fit(tiny_dataset)
        second = trainer.fit(tiny_dataset)
        assert first.epochs_run == second.epochs_run == 1

    def test_sets_eval_mode_after_fit(self, tiny_dataset):
        trainer = DataParallelTrainer(_predictor(tiny_dataset), _spec(epochs=1), workers=2)
        trainer.fit(tiny_dataset)
        assert not trainer.predictor.training


class TestSharding:
    def test_shards_partition_evenly(self, tiny_dataset):
        trainer = DataParallelTrainer(_predictor(tiny_dataset), _spec(), workers=3)
        shards = trainer._shards(10)
        covered = [i for s in shards for i in range(s.start, s.stop)]
        assert covered == list(range(10))
        sizes = [s.stop - s.start for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_samples_than_workers(self, tiny_dataset):
        trainer = DataParallelTrainer(_predictor(tiny_dataset), _spec(), workers=8)
        shards = trainer._shards(3)
        assert len(shards) == 3
        assert all(s.stop - s.start == 1 for s in shards)

    def test_single_sample_single_shard(self, tiny_dataset):
        trainer = DataParallelTrainer(_predictor(tiny_dataset), _spec(), workers=4)
        assert trainer._shards(1) == [slice(0, 1)]
