"""Tests for the conditional discriminator."""

import numpy as np
import pytest

from repro.core import Discriminator, table1_spec
from repro.data import FeatureConfig


@pytest.fixture(scope="module")
def features():
    return FeatureConfig()


def small_disc(features, conditional=True, seed=0):
    return Discriminator(
        features,
        spec=table1_spec("F", 0.05),
        conditional=conditional,
        rng=np.random.default_rng(seed),
    )


class TestForward:
    def test_logit_shape(self, features):
        disc = small_disc(features)
        from repro import nn

        sequences = nn.Tensor(np.random.default_rng(1).random((6, features.alpha)))
        condition = nn.Tensor(np.random.default_rng(2).random((6, features.condition_dim)))
        out = disc(sequences, condition)
        assert out.shape == (6,)

    def test_conditional_requires_condition(self, features):
        disc = small_disc(features)
        from repro import nn

        with pytest.raises(ValueError, match="condition"):
            disc(nn.Tensor(np.zeros((2, features.alpha))))

    def test_unconditional_ignores_condition_input(self, features):
        disc = small_disc(features, conditional=False)
        from repro import nn

        out = disc(nn.Tensor(np.zeros((2, features.alpha))))
        assert out.shape == (2,)

    def test_condition_changes_output(self, features):
        disc = small_disc(features)
        rng = np.random.default_rng(3)
        seq = rng.random((4, features.alpha))
        a = disc.probability(seq, rng.random((4, features.condition_dim)))
        b = disc.probability(seq, rng.random((4, features.condition_dim)))
        assert not np.allclose(a, b)


class TestProbability:
    def test_in_unit_interval(self, features):
        disc = small_disc(features)
        rng = np.random.default_rng(4)
        probs = disc.probability(
            rng.random((10, features.alpha)), rng.random((10, features.condition_dim))
        )
        assert np.all(probs > 0.0) and np.all(probs < 1.0)

    def test_probability_is_grad_free(self, features):
        disc = small_disc(features)
        rng = np.random.default_rng(5)
        disc.probability(rng.random((3, features.alpha)), rng.random((3, features.condition_dim)))
        assert all(p.grad is None for p in disc.parameters())


class TestArchitecture:
    def test_five_linear_layers(self, features):
        disc = Discriminator(features, spec=table1_spec("F"), rng=np.random.default_rng(0))
        from repro.nn import Linear

        linears = [m for m in disc.net if isinstance(m, Linear)]
        assert len(linears) == 5  # the paper's 5 FC layers
        assert linears[0].in_features == features.alpha + features.condition_dim
        assert linears[-1].out_features == 1

    def test_unconditional_input_dim(self, features):
        disc = Discriminator(
            features, spec=table1_spec("F"), conditional=False, rng=np.random.default_rng(0)
        )
        from repro.nn import Linear

        first = next(m for m in disc.net if isinstance(m, Linear))
        assert first.in_features == features.alpha

    def test_parameters_trainable(self, features):
        disc = small_disc(features)
        assert disc.num_parameters() > 0
