"""Tests for early stopping with best-weight restoration."""

import numpy as np
import pytest

from repro.core import SupervisedTrainer, TrainSpec, build_predictor, table1_spec


def make_trainer(dataset, patience, epochs=12, lr=0.001, seed=0):
    predictor = build_predictor(
        "F", dataset.config, spec=table1_spec("F", 0.05), rng=np.random.default_rng(seed)
    )
    spec = TrainSpec(
        epochs=epochs,
        batch_size=64,
        max_steps_per_epoch=4,
        early_stopping_patience=patience,
        learning_rate=lr,
        seed=seed,
    )
    return SupervisedTrainer(predictor, spec)


class TestEarlyStopping:
    def test_disabled_by_default(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset, patience=None, epochs=4)
        history = trainer.fit(tiny_dataset)
        assert history.epochs_run == 4

    def test_stops_when_validation_plateaus(self, tiny_dataset):
        # A huge learning rate makes validation bounce, triggering the stop.
        trainer = make_trainer(tiny_dataset, patience=2, epochs=30, lr=0.5)
        history = trainer.fit(tiny_dataset)
        assert history.epochs_run < 30

    def test_restores_best_weights(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset, patience=3, epochs=15, lr=0.3)
        history = trainer.fit(tiny_dataset)
        final_val = trainer.validation_loss(tiny_dataset)
        best_seen = np.nanmin(history.validation_loss)
        assert final_val == pytest.approx(best_seen, rel=1e-6)

    def test_verbose_reports_stop(self, tiny_dataset, capsys):
        trainer = make_trainer(tiny_dataset, patience=1, epochs=30, lr=0.5)
        trainer.fit(tiny_dataset, verbose=True)
        out = capsys.readouterr().out
        if trainer.spec.epochs > len(out.splitlines()):
            assert "early stop" in out

    def test_history_lengths_match_epochs_run(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset, patience=2, epochs=30, lr=0.5)
        history = trainer.fit(tiny_dataset)
        assert len(history.train_loss) == len(history.validation_loss) == history.epochs_run
