"""Tests for the APOTS facade."""

import numpy as np
import pytest

from repro import APOTS
from repro.core.model import EvaluationReport


class TestConstruction:
    def test_name_reflects_mode(self, micro_preset):
        assert APOTS(predictor="H", adversarial=True, preset=micro_preset).name == "APOTS_H"
        assert APOTS(predictor="H", adversarial=False, preset=micro_preset).name == "H"

    def test_kind(self, micro_preset):
        assert APOTS(predictor="L", preset=micro_preset).kind == "L"

    def test_plain_model_has_no_discriminator(self, micro_preset):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset)
        assert model.discriminator is None

    def test_adversarial_model_has_discriminator(self, micro_preset):
        model = APOTS(predictor="F", adversarial=True, preset=micro_preset)
        assert model.discriminator is not None

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            APOTS(preset="galactic")

    def test_named_presets_accepted(self):
        model = APOTS(predictor="F", preset="smoke")
        assert model.preset.name == "smoke"


class TestFitPredictEvaluate:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset, micro_preset):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        return model.fit(tiny_dataset)

    def test_fit_returns_self(self, tiny_dataset, micro_preset):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        assert model.fit(tiny_dataset) is model

    def test_history_recorded(self, fitted):
        assert fitted.history is not None
        assert fitted.history.epochs_run > 0

    def test_predict_shape_and_units(self, fitted, tiny_dataset):
        predictions = fitted.predict(tiny_dataset, subset="test")
        assert predictions.shape == (len(tiny_dataset.split.test),)
        # km/h range, not scaled units.
        assert predictions.mean() > 5.0

    def test_evaluate_report_structure(self, fitted, tiny_dataset):
        report = fitted.evaluate(tiny_dataset)
        assert isinstance(report, EvaluationReport)
        assert set(report.overall) == {"mae", "rmse", "mape"}
        assert set(report.by_regime) == {"whole", "normal", "abrupt_acc", "abrupt_dec"}
        assert report.mape == report.overall["mape"]
        assert report.mae == report.overall["mae"]
        assert report.rmse == report.overall["rmse"]

    def test_whole_regime_equals_overall(self, fitted, tiny_dataset):
        report = fitted.evaluate(tiny_dataset)
        assert report.regime_mape("whole") == pytest.approx(report.mape)

    def test_regime_counts_partition(self, fitted, tiny_dataset):
        report = fitted.evaluate(tiny_dataset)
        counts = report.regime_counts
        assert counts["whole"] == counts["normal"] + counts["abrupt_acc"] + counts["abrupt_dec"]

    def test_evaluate_on_validation(self, fitted, tiny_dataset):
        report = fitted.evaluate(tiny_dataset, subset="validation")
        assert np.isfinite(report.mape)

    def test_adversarial_fit_works(self, tiny_dataset, micro_preset):
        model = APOTS(predictor="F", adversarial=True, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        assert model.history.epochs_run > 0
        assert np.isfinite(model.evaluate(tiny_dataset).mape)

    def test_empty_regime_is_nan(self, fitted, tiny_dataset):
        report = fitted.evaluate(tiny_dataset, subset="validation")
        for regime, count in report.regime_counts.items():
            if count == 0:
                assert np.isnan(report.by_regime[regime]["mape"])


class TestReproducibility:
    def test_same_seed_same_predictions(self, tiny_dataset, micro_preset):
        results = []
        for _ in range(2):
            model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=9)
            model.fit(tiny_dataset)
            results.append(model.predict(tiny_dataset))
        np.testing.assert_allclose(results[0], results[1])
