"""Tests for the four predictor architectures."""

import numpy as np
import pytest

from repro.core import build_predictor, table1_spec
from repro.core.predictors import CNNPredictor, FCPredictor, HybridPredictor, LSTMPredictor
from repro.data import FeatureConfig

SMALL = 0.05  # width factor keeping tests fast


@pytest.fixture(scope="module")
def features():
    return FeatureConfig()


def small_predictor(kind, features, seed=0):
    return build_predictor(
        kind, features, spec=table1_spec(kind, SMALL), rng=np.random.default_rng(seed)
    )


def random_inputs(features, batch=4, seed=1):
    rng = np.random.default_rng(seed)
    images = rng.random((batch, features.image_rows, features.alpha))
    day_types = (rng.random((batch, 4)) > 0.5).astype(float)
    flat = np.concatenate(
        [images.reshape(batch, features.image_rows * features.alpha), day_types], axis=1
    )
    return images, day_types, flat


class TestRegistry:
    def test_kinds(self, features):
        assert isinstance(small_predictor("F", features), FCPredictor)
        assert isinstance(small_predictor("L", features), LSTMPredictor)
        assert isinstance(small_predictor("C", features), CNNPredictor)
        assert isinstance(small_predictor("H", features), HybridPredictor)

    def test_kind_attribute(self, features):
        for kind in "FLCH":
            assert small_predictor(kind, features).kind == kind

    def test_unknown_kind(self, features):
        with pytest.raises(ValueError, match="unknown predictor kind"):
            build_predictor("X", features)


class TestForwardShapes:
    @pytest.mark.parametrize("kind", ["F", "L", "C", "H"])
    def test_output_is_flat_batch(self, features, kind):
        predictor = small_predictor(kind, features)
        images, day_types, flat = random_inputs(features)
        out = predictor.predict_arrays(images, day_types, flat)
        assert out.shape == (4,)

    @pytest.mark.parametrize("kind", ["F", "L", "C", "H"])
    def test_predict_batches_match_direct(self, features, kind):
        predictor = small_predictor(kind, features)
        images, day_types, flat = random_inputs(features, batch=10)
        direct = predictor.predict_arrays(images, day_types, flat).data
        batched = predictor.predict(images, day_types, flat, batch_size=3)
        np.testing.assert_allclose(direct, batched, rtol=1e-10)

    def test_predict_empty(self, features):
        predictor = small_predictor("F", features)
        images, day_types, flat = random_inputs(features, batch=0)
        assert predictor.predict(images, day_types, flat).shape == (0,)

    def test_predict_restores_training_mode(self, features):
        predictor = small_predictor("F", features)
        predictor.train()
        images, day_types, flat = random_inputs(features)
        predictor.predict(images, day_types, flat)
        assert predictor.training


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["F", "L", "C", "H"])
    def test_same_seed_same_output(self, features, kind):
        a = small_predictor(kind, features, seed=7)
        b = small_predictor(kind, features, seed=7)
        images, day_types, flat = random_inputs(features)
        np.testing.assert_allclose(
            a.predict_arrays(images, day_types, flat).data,
            b.predict_arrays(images, day_types, flat).data,
        )

    def test_different_seed_differs(self, features):
        a = small_predictor("F", features, seed=1)
        b = small_predictor("F", features, seed=2)
        images, day_types, flat = random_inputs(features)
        assert not np.allclose(
            a.predict_arrays(images, day_types, flat).data,
            b.predict_arrays(images, day_types, flat).data,
        )


class TestGradientsFlow:
    @pytest.mark.parametrize("kind", ["F", "L", "C", "H"])
    def test_all_parameters_receive_gradients(self, features, kind):
        predictor = small_predictor(kind, features)
        images, day_types, flat = random_inputs(features)
        out = predictor.predict_arrays(images, day_types, flat)
        (out * out).sum().backward()
        for name, param in predictor.named_parameters():
            assert param.grad is not None, f"{kind}: no gradient for {name}"
            assert np.all(np.isfinite(param.grad)), f"{kind}: non-finite gradient for {name}"


class TestArchitectureDetails:
    def test_fc_depth_matches_table1(self, features):
        predictor = FCPredictor(features, spec=table1_spec("F"), rng=np.random.default_rng(0))
        from repro.nn import Linear

        linears = [m for m in predictor.net if isinstance(m, Linear)]
        assert [l.out_features for l in linears] == [512, 128, 256, 64, 1]
        assert linears[0].in_features == features.flat_dim

    def test_lstm_widths_match_table1(self, features):
        predictor = LSTMPredictor(features, spec=table1_spec("L"), rng=np.random.default_rng(0))
        assert predictor.lstm.hidden_sizes == [512, 512]

    def test_cnn_channels_match_table1(self, features):
        predictor = CNNPredictor(features, spec=table1_spec("C"), rng=np.random.default_rng(0))
        from repro.nn import Conv2d

        convs = [m for m in predictor.trunk.layers if isinstance(m, Conv2d)]
        assert [c.out_channels for c in convs] == [128, 32, 64]
        assert [c.kernel_size for c in convs] == [(3, 3), (1, 1), (3, 3)]

    def test_conv_preserves_image_shape(self, features):
        predictor = small_predictor("C", features)
        from repro.nn import Conv2d

        for conv in predictor.trunk.layers:
            if isinstance(conv, Conv2d):
                assert conv.output_shape(features.image_rows, features.alpha) == (
                    features.image_rows,
                    features.alpha,
                )

    def test_hybrid_has_cnn_and_lstm(self, features):
        predictor = small_predictor("H", features)
        assert hasattr(predictor, "trunk") and hasattr(predictor, "lstm")
