"""Tests for the plain supervised trainer."""

import json

import numpy as np
import pytest

from repro.core import SupervisedTrainer, TrainSpec, build_predictor, table1_spec
from repro.obs import RunRecorder, validate_run_dir


def make_trainer(dataset, epochs=3, seed=0):
    predictor = build_predictor(
        "F", dataset.config, spec=table1_spec("F", 0.05), rng=np.random.default_rng(seed)
    )
    spec = TrainSpec(epochs=epochs, batch_size=64, max_steps_per_epoch=8, seed=seed)
    return SupervisedTrainer(predictor, spec)


class TestFit:
    def test_history_lengths(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset, epochs=3)
        history = trainer.fit(tiny_dataset)
        assert history.epochs_run == 3
        assert len(history.validation_loss) == 3

    def test_loss_decreases(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset, epochs=5)
        history = trainer.fit(tiny_dataset)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_losses_finite(self, tiny_dataset):
        history = make_trainer(tiny_dataset).fit(tiny_dataset)
        assert np.all(np.isfinite(history.train_loss))
        assert np.all(np.isfinite(history.validation_loss))

    def test_sets_eval_mode_after_fit(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset)
        trainer.fit(tiny_dataset)
        assert not trainer.predictor.training

    def test_deterministic_given_seed(self, tiny_dataset):
        a = make_trainer(tiny_dataset, seed=3).fit(tiny_dataset)
        b = make_trainer(tiny_dataset, seed=3).fit(tiny_dataset)
        np.testing.assert_allclose(a.train_loss, b.train_loss)

    def test_max_steps_limits_work(self, tiny_dataset):
        predictor = build_predictor(
            "F", tiny_dataset.config, spec=table1_spec("F", 0.05), rng=np.random.default_rng(0)
        )
        spec = TrainSpec(epochs=1, batch_size=16, max_steps_per_epoch=2, seed=0)
        counted = []
        trainer = SupervisedTrainer(predictor, spec)
        original = trainer.predictor.predict_arrays

        def counting(*args, **kwargs):
            counted.append(1)
            return original(*args, **kwargs)

        trainer.predictor.predict_arrays = counting
        trainer.fit(tiny_dataset)
        # 2 training steps plus one validation pass through predict().
        assert sum(counted) <= 4

    def test_verbose_prints(self, tiny_dataset, capsys):
        make_trainer(tiny_dataset, epochs=1).fit(tiny_dataset, verbose=True)
        assert "epoch 1/1" in capsys.readouterr().out


class TestObservability:
    def test_fit_emits_valid_run_log(self, tiny_dataset, tmp_path):
        trainer = make_trainer(tiny_dataset, epochs=2)
        recorder = RunRecorder(tmp_path / "run")
        history = trainer.fit(tiny_dataset, recorder=recorder)
        recorder.close()
        assert validate_run_dir(recorder.directory) == []
        events = [
            json.loads(line)
            for line in recorder.events_path.read_text().splitlines()
            if line.strip()
        ]
        epochs = [e for e in events if e["kind"] == "epoch"]
        assert len(epochs) == history.epochs_run == 2
        assert all(np.isfinite(e["grad_norm"]) for e in epochs)
        steps = [e for e in events if e["kind"] == "step"]
        assert len(steps) == 2 * 8  # epochs * max_steps_per_epoch
        manifest = json.loads(recorder.manifest_path.read_text())
        assert manifest["trainer"] == "SupervisedTrainer"
        assert "train_step" in manifest["sections"]

    def test_grad_norm_history_tracked(self, tiny_dataset):
        history = make_trainer(tiny_dataset, epochs=2).fit(tiny_dataset)
        assert len(history.grad_norm) == 2
        assert np.all(np.isfinite(history.grad_norm))

    def test_recorder_does_not_change_trajectory(self, tiny_dataset, tmp_path):
        plain = make_trainer(tiny_dataset, seed=9).fit(tiny_dataset)
        recorder = RunRecorder(tmp_path / "run")
        observed = make_trainer(tiny_dataset, seed=9).fit(tiny_dataset, recorder=recorder)
        recorder.close()
        np.testing.assert_allclose(plain.train_loss, observed.train_loss)


class TestValidationLoss:
    def test_positive(self, tiny_dataset):
        trainer = make_trainer(tiny_dataset)
        assert trainer.validation_loss(tiny_dataset) > 0.0

    def test_nan_when_no_validation(self, tiny_series):
        from repro.data import FeatureConfig, TrafficDataset, split_windows

        split = split_windows(
            1700, validation_fraction=0.0, rng=np.random.default_rng(0), window_span=13
        )
        # Rebuild with matching window count.
        config = FeatureConfig()
        n = tiny_series.num_steps - config.alpha - config.beta + 1
        split = split_windows(n, validation_fraction=0.0, rng=np.random.default_rng(0), window_span=13)
        ds = TrafficDataset(tiny_series, config, split=split)
        if len(ds.split.validation) == 0:
            trainer = make_trainer(ds)
            assert np.isnan(trainer.validation_loss(ds))
