"""Tests for the validation-split grid search (Section V-A workflow)."""

import numpy as np
import pytest

from repro.core import GridSearchResult, expand_grid, grid_search


class TestExpandGrid:
    def test_empty_grid_yields_one_empty_config(self):
        assert list(expand_grid({})) == [{}]

    def test_cartesian_product(self):
        configs = list(expand_grid({"a": [1, 2], "b": ["x", "y"]}))
        assert len(configs) == 4
        assert {"a": 1, "b": "y"} in configs

    def test_sorted_key_order_is_deterministic(self):
        first = list(expand_grid({"b": [1], "a": [2]}))
        second = list(expand_grid({"a": [2], "b": [1]}))
        assert first == second


class TestGridSearchResult:
    def test_best_requires_entries(self):
        with pytest.raises(ValueError):
            GridSearchResult().best  # noqa: B018

    def test_sorting(self):
        result = GridSearchResult(
            entries=[
                {"params": {"lr": 1}, "validation_mape": 9.0, "model": None},
                {"params": {"lr": 2}, "validation_mape": 3.0, "model": None},
            ]
        )
        result.sort()
        assert result.best["params"] == {"lr": 2}

    def test_render(self):
        result = GridSearchResult(
            entries=[{"params": {"lr": 0.01}, "validation_mape": 5.0, "model": None}]
        )
        assert "lr=0.01" in result.render()


class TestGridSearch:
    def test_evaluates_every_combination(self, tiny_dataset, micro_preset):
        result = grid_search(
            "F",
            tiny_dataset,
            micro_preset,
            train_grid={"learning_rate": [0.001, 0.01]},
            width_factors=[0.05],
            seed=0,
        )
        assert len(result.entries) == 2
        assert all(np.isfinite(e["validation_mape"]) for e in result.entries)

    def test_best_model_is_fitted(self, tiny_dataset, micro_preset):
        result = grid_search(
            "F", tiny_dataset, micro_preset, train_grid={"batch_size": [32]}, seed=0
        )
        model = result.best_model()
        assert model.history is not None
        prediction = model.predict(tiny_dataset)
        assert prediction.shape == (len(tiny_dataset.split.test),)

    def test_width_sweep(self, tiny_dataset, micro_preset):
        result = grid_search(
            "F", tiny_dataset, micro_preset, width_factors=[0.05, 0.1], seed=0
        )
        widths = {e["params"]["width_factor"] for e in result.entries}
        assert widths == {0.05, 0.1}

    def test_entries_sorted_by_validation_mape(self, tiny_dataset, micro_preset):
        result = grid_search(
            "F",
            tiny_dataset,
            micro_preset,
            train_grid={"learning_rate": [0.0001, 0.005]},
            seed=0,
        )
        scores = [e["validation_mape"] for e in result.entries]
        assert scores == sorted(scores)


class TestGridSearchWorkers:
    """The workers flag must change wall-clock shape only, never numbers."""

    def test_parallel_matches_serial(self, tiny_dataset, micro_preset):
        kwargs = dict(train_grid={"learning_rate": [0.001, 0.01]}, seed=0)
        serial = grid_search("F", tiny_dataset, micro_preset, workers=1, **kwargs)
        parallel = grid_search("F", tiny_dataset, micro_preset, workers=2, **kwargs)
        assert [e["params"] for e in serial.entries] == [
            e["params"] for e in parallel.entries
        ]
        assert [e["validation_mape"] for e in serial.entries] == [
            e["validation_mape"] for e in parallel.entries
        ]

    def test_parallel_best_model_predicts_identically(self, tiny_dataset, micro_preset):
        kwargs = dict(train_grid={"learning_rate": [0.001, 0.01]}, seed=0)
        serial = grid_search("F", tiny_dataset, micro_preset, workers=1, **kwargs)
        parallel = grid_search("F", tiny_dataset, micro_preset, workers=2, **kwargs)
        assert np.array_equal(
            serial.best_model().predict(tiny_dataset),
            parallel.best_model().predict(tiny_dataset),
        )
