"""Tests for model checkpointing (save_model / load_model)."""

import json

import numpy as np
import pytest

from repro import APOTS
from repro.core import load_model, save_model
from repro.data import FactorMask, FeatureConfig


@pytest.fixture(scope="module")
def fitted(request):
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    micro_preset = request.getfixturevalue("micro_preset")
    model = APOTS(predictor="F", adversarial=True, preset=micro_preset, seed=0)
    return model.fit(tiny_dataset), tiny_dataset


class TestRoundtrip:
    def test_predictions_identical(self, fitted, tmp_path):
        model, dataset = fitted
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        np.testing.assert_allclose(loaded.predict(dataset), model.predict(dataset))

    def test_discriminator_restored(self, fitted, tmp_path):
        model, dataset = fitted
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        assert loaded.discriminator is not None
        rng = np.random.default_rng(0)
        seq = rng.random((3, dataset.config.alpha))
        cond = rng.random((3, dataset.config.condition_dim))
        np.testing.assert_allclose(
            loaded.discriminator.probability(seq, cond),
            model.discriminator.probability(seq, cond),
        )

    def test_metadata_preserved(self, fitted, tmp_path):
        model, _ = fitted
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        assert loaded.kind == model.kind
        assert loaded.adversarial == model.adversarial
        assert loaded.features == model.features
        assert loaded.spec == model.spec

    def test_plain_model_has_no_discriminator_file(self, tiny_dataset, micro_preset, tmp_path):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        path = save_model(model, tmp_path / "plain")
        assert not (path / "discriminator.npz").exists()
        loaded = load_model(path)
        assert loaded.discriminator is None
        np.testing.assert_allclose(loaded.predict(tiny_dataset), model.predict(tiny_dataset))

    def test_nondefault_features_roundtrip(self, micro_preset, tmp_path):
        features = FeatureConfig(alpha=12, beta=2, m=1, mask=FactorMask.table2("ST"))
        model = APOTS(predictor="C", features=features, adversarial=False, preset=micro_preset)
        save_model(model, tmp_path / "c")
        loaded = load_model(tmp_path / "c")
        assert loaded.features == features


class TestScalerPersistence:
    """Format v2: the fitted feature scalers ride along with the weights."""

    def test_scaler_state_roundtrips(self, fitted, tmp_path):
        model, _ = fitted
        assert model.scalers is not None  # recorded by fit()
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        assert loaded.scalers is not None
        assert loaded.scalers.state_dict() == model.scalers.state_dict()

    def test_raw_speed_inference_reproduced(self, fitted, tmp_path):
        # The point of persisting scalers: identical km/h forecasts from
        # raw inputs, not just identical scaled outputs.
        model, dataset = fitted
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        indices = dataset.subset("test")
        batch = dataset.batch(indices)
        scaled = loaded.predictor.predict(batch.images, batch.day_types, batch.flat)
        np.testing.assert_array_equal(
            loaded.scalers.speed.inverse_transform(scaled),
            dataset.kmh(model.predictor.predict(batch.images, batch.day_types, batch.flat)),
        )

    def test_unfitted_model_saves_without_scalers(self, micro_preset, tmp_path):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset)
        save_model(model, tmp_path / "ckpt")
        assert load_model(tmp_path / "ckpt").scalers is None

    def test_v1_checkpoint_still_loads(self, fitted, tmp_path):
        model, dataset = fitted
        path = save_model(model, tmp_path / "v1")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 1
        manifest.pop("scalers")
        (path / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_model(path)
        assert loaded.scalers is None
        np.testing.assert_allclose(loaded.predict(dataset), model.predict(dataset))


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope")

    def test_unsupported_version(self, fitted, tmp_path):
        model, _ = fitted
        path = save_model(model, tmp_path / "v")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version 99"):
            load_model(path)

    def test_version_error_names_supported_versions(self, fitted, tmp_path):
        model, _ = fitted
        path = save_model(model, tmp_path / "v")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 0
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match=r"reads versions \(1, 2, 3\)"):
            load_model(path)


class TestReferenceProfilePersistence:
    """Format v3: the training-time input profile rides along too."""

    def test_profile_roundtrips(self, fitted, tmp_path):
        model, _ = fitted
        assert model.reference_profile is not None  # recorded by fit()
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        assert loaded.reference_profile is not None
        assert loaded.reference_profile == model.reference_profile

    def test_manifest_declares_v3(self, fitted, tmp_path):
        model, _ = fitted
        path = save_model(model, tmp_path / "ckpt")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format_version"] == 3
        assert manifest["reference_profile"] is not None

    def test_v2_checkpoint_still_loads(self, fitted, tmp_path):
        # A pre-profile checkpoint: same weights and scalers, no profile
        # field at all.  Must load with reference_profile=None (input
        # drift monitoring disabled) and predict identically.
        model, dataset = fitted
        path = save_model(model, tmp_path / "v2")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 2
        manifest.pop("reference_profile")
        (path / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_model(path)
        assert loaded.reference_profile is None
        assert loaded.scalers is not None
        np.testing.assert_allclose(loaded.predict(dataset), model.predict(dataset))

    def test_unfitted_model_saves_without_profile(self, micro_preset, tmp_path):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset)
        path = save_model(model, tmp_path / "ckpt")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["reference_profile"] is None
        assert load_model(path).reference_profile is None
