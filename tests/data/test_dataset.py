"""Tests for TrafficDataset batching and adversarial rollout groups."""

import numpy as np
import pytest

from repro.data import FeatureConfig, TrafficDataset, iterate_batches


class TestSubsets:
    def test_named_subsets(self, tiny_dataset):
        for name in ("train", "validation", "test"):
            assert len(tiny_dataset.subset(name)) > 0

    def test_unknown_subset(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.subset("bogus")


class TestBatch:
    def test_alignment(self, tiny_dataset):
        indices = tiny_dataset.split.train[:7]
        batch = tiny_dataset.batch(indices)
        assert len(batch) == 7
        np.testing.assert_allclose(batch.images, tiny_dataset.features.images[indices])
        np.testing.assert_allclose(batch.targets, tiny_dataset.features.targets[indices])

    def test_flat_matches_features(self, tiny_dataset):
        indices = tiny_dataset.split.train[:3]
        batch = tiny_dataset.batch(indices)
        expected = tiny_dataset.features.flat(indices)
        np.testing.assert_allclose(batch.flat, expected)


class TestRollout:
    def test_anchor_history_is_in_train(self, tiny_dataset):
        anchors = tiny_dataset.rollout_anchors("train")
        assert len(anchors) > 0
        train = set(tiny_dataset.split.train.tolist())
        alpha = tiny_dataset.config.alpha
        for anchor in anchors[:50]:
            for offset in range(alpha):
                assert anchor - offset in train

    def test_group_ordering_anchor_major_time_ordered(self, tiny_dataset):
        anchors = tiny_dataset.rollout_anchors("train")[:4]
        batch = tiny_dataset.rollout_batch(anchors)
        alpha = tiny_dataset.config.alpha
        assert batch.group_flat.shape[0] == 4 * alpha
        # Last window of each group is the anchor itself.
        np.testing.assert_allclose(
            batch.group_targets.reshape(4, alpha)[:, -1], batch.anchor_targets
        )

    def test_real_sequences_are_consecutive_targets(self, tiny_dataset):
        anchors = tiny_dataset.rollout_anchors("train")[:2]
        batch = tiny_dataset.rollout_batch(anchors)
        alpha = tiny_dataset.config.alpha
        sequences = batch.real_sequences(alpha)
        for row, anchor in enumerate(anchors):
            expected = tiny_dataset.features.targets[anchor - alpha + 1 : anchor + 1]
            np.testing.assert_allclose(sequences[row], expected)

    def test_condition_is_anchor_condition(self, tiny_dataset):
        anchors = tiny_dataset.rollout_anchors("train")[:3]
        batch = tiny_dataset.rollout_batch(anchors)
        expected = tiny_dataset.features.condition(anchors)
        np.testing.assert_allclose(batch.condition, expected)

    def test_negative_anchor_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.rollout_batch(np.array([3]))  # needs 11 predecessors

    def test_empty_when_no_runs(self, tiny_series):
        # A split whose train set has no alpha-long run yields no anchors.
        from repro.data import SplitIndices

        n = 200
        scattered = np.arange(0, n, 5)
        rest = np.setdiff1d(np.arange(n), scattered)
        split = SplitIndices(train=scattered, validation=np.array([], dtype=int), test=rest[:1])
        ds = TrafficDataset(tiny_series, FeatureConfig(), split=split)
        assert len(ds.rollout_anchors("train")) == 0


class TestKmh:
    def test_roundtrip(self, tiny_dataset):
        scaled = tiny_dataset.features.targets[:10]
        np.testing.assert_allclose(
            tiny_dataset.kmh(scaled), tiny_dataset.features.targets_kmh[:10], rtol=1e-10
        )

    def test_evaluation_arrays(self, tiny_dataset):
        truth, last = tiny_dataset.evaluation_arrays("test")
        assert truth.shape == last.shape == (len(tiny_dataset.split.test),)


class TestGeometryMismatch:
    def test_alpha_mismatch_raises_via_model(self, tiny_series):
        from repro.core import APOTS

        ds = TrafficDataset(tiny_series, FeatureConfig(alpha=6), seed=0)
        model = APOTS(predictor="F", features=FeatureConfig(alpha=12), preset="smoke")
        with pytest.raises(ValueError, match="geometry"):
            model.fit(ds)


class TestIterateBatches:
    def test_covers_all_indices(self):
        indices = np.arange(10)
        seen = np.concatenate(list(iterate_batches(indices, 3, shuffle=False)))
        np.testing.assert_array_equal(seen, indices)

    def test_shuffle_permutes(self):
        indices = np.arange(100)
        batches = list(iterate_batches(indices, 100, rng=np.random.default_rng(0)))
        assert not np.array_equal(batches[0], indices)
        assert sorted(batches[0].tolist()) == indices.tolist()

    def test_drop_last(self):
        batches = list(iterate_batches(np.arange(10), 4, shuffle=False, drop_last=True))
        assert [len(b) for b in batches] == [4, 4]

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            list(iterate_batches(np.arange(5), 0))

    def test_deterministic_with_rng(self):
        a = list(iterate_batches(np.arange(20), 5, rng=np.random.default_rng(9)))
        b = list(iterate_batches(np.arange(20), 5, rng=np.random.default_rng(9)))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
