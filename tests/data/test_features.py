"""Tests for window/feature extraction and the factor masks."""

import numpy as np
import pytest

from repro.data import FactorMask, FeatureConfig, build_features, fit_scalers


class TestFactorMask:
    def test_defaults_all_on(self):
        mask = FactorMask()
        assert mask.adjacent and mask.event and mask.weather and mask.time
        assert mask.uses_additional

    def test_speed_only(self):
        mask = FactorMask.speed_only()
        assert not mask.uses_additional

    def test_named_configurations(self):
        assert FactorMask.adjacent_only().adjacent
        assert not FactorMask.adjacent_only().time
        assert FactorMask.non_speed_only().time
        assert not FactorMask.non_speed_only().adjacent

    @pytest.mark.parametrize(
        "code,event,weather,time",
        [
            ("S", False, False, False),
            ("SE", True, False, False),
            ("SW", False, True, False),
            ("ST", False, False, True),
            ("SEW", True, True, False),
            ("SET", True, False, True),
            ("SWT", False, True, True),
            ("SEWT", True, True, True),
        ],
    )
    def test_table2_codes(self, code, event, weather, time):
        mask = FactorMask.table2(code)
        assert mask.adjacent  # adjacency always on for Table II
        assert mask.event == event
        assert mask.weather == weather
        assert mask.time == time

    def test_table2_lowercase_accepted(self):
        assert FactorMask.table2("sewt").time

    def test_table2_invalid(self):
        with pytest.raises(ValueError):
            FactorMask.table2("EWT")
        with pytest.raises(ValueError):
            FactorMask.table2("SX")


class TestFeatureConfig:
    def test_paper_defaults(self):
        config = FeatureConfig()
        assert config.alpha == 12
        assert config.beta == 1
        assert config.m == 2
        assert config.num_roads == 5
        assert config.image_rows == 9
        assert config.flat_dim == 9 * 12 + 4
        assert config.condition_dim == 8 * 12 + 4

    @pytest.mark.parametrize("overrides", [{"alpha": 1}, {"beta": 0}, {"m": -1}])
    def test_invalid(self, overrides):
        with pytest.raises(ValueError):
            FeatureConfig(**overrides)

    def test_with_mask(self):
        config = FeatureConfig().with_mask(FactorMask.speed_only())
        assert not config.mask.adjacent
        assert config.alpha == 12


class TestBuildFeatures:
    def test_window_count(self, tiny_series):
        config = FeatureConfig()
        features = build_features(tiny_series, config)
        expected = tiny_series.num_steps - config.alpha - config.beta + 1
        assert features.num_windows == expected
        assert features.images.shape == (expected, 9, 12)

    def test_target_alignment(self, tiny_series):
        """Window i's target is the target-road speed at step i+alpha-1+beta."""
        config = FeatureConfig()
        features = build_features(tiny_series, config)
        i = 100
        expected = tiny_series.target_speeds()[i + config.alpha - 1 + config.beta]
        assert features.targets_kmh[i] == pytest.approx(expected)

    def test_last_input_alignment(self, tiny_series):
        config = FeatureConfig()
        features = build_features(tiny_series, config)
        i = 50
        expected = tiny_series.target_speeds()[i + config.alpha - 1]
        assert features.last_input_kmh[i] == pytest.approx(expected)

    def test_speed_matrix_middle_row_is_target_road(self, tiny_series):
        config = FeatureConfig()
        features = build_features(tiny_series, config)
        i = 10
        window = features.images[i, config.m, :]
        kmh = features.scalers.speed.inverse_transform(window)
        expected = tiny_series.target_speeds()[i : i + config.alpha]
        np.testing.assert_allclose(kmh, expected, rtol=1e-10)

    def test_adjacent_rows_follow_corridor_order(self, tiny_series):
        config = FeatureConfig()
        features = build_features(tiny_series, config)
        indices = tiny_series.corridor.adjacent_indices(config.m)
        i = 10
        for row, segment in enumerate(indices):
            kmh = features.scalers.speed.inverse_transform(features.images[i, row, :])
            np.testing.assert_allclose(kmh, tiny_series.speeds[segment, i : i + 12], rtol=1e-10)

    def test_scaled_targets_roundtrip(self, tiny_series):
        features = build_features(tiny_series, FeatureConfig())
        recovered = features.scalers.speed.inverse_transform(features.targets)
        np.testing.assert_allclose(recovered, features.targets_kmh, rtol=1e-10)

    def test_speed_only_zeroes_everything_but_target_row(self, tiny_series):
        config = FeatureConfig(mask=FactorMask.speed_only())
        features = build_features(tiny_series, config)
        images = features.images
        assert np.all(images[:, :2, :] == 0.0)
        assert np.all(images[:, 3:, :] == 0.0)
        assert np.any(images[:, 2, :] != 0.0)
        assert np.all(features.day_types == 0.0)

    def test_non_speed_only_zeroes_adjacent(self, tiny_series):
        config = FeatureConfig(mask=FactorMask.non_speed_only())
        features = build_features(tiny_series, config)
        assert np.all(features.images[:, 0:2, :] == 0.0)
        assert np.all(features.images[:, 3:5, :] == 0.0)
        assert np.any(features.images[:, 5:, :] != 0.0)  # non-speed rows live

    def test_event_mask_zeroes_event_row(self, tiny_series):
        config = FeatureConfig(mask=FactorMask(adjacent=True, event=False, weather=True, time=True))
        features = build_features(tiny_series, config)
        assert np.all(features.images[:, 5, :] == 0.0)

    def test_all_masks_share_shapes(self, tiny_series):
        """The Q2 rule: input size is fixed; ablations only zero-fill."""
        shapes = set()
        for mask in (FactorMask.speed_only(), FactorMask.both(), FactorMask.table2("SW")):
            features = build_features(tiny_series, FeatureConfig(mask=mask))
            shapes.add(features.images.shape)
        assert len(shapes) == 1

    def test_flat_and_condition_dimensions(self, tiny_dataset):
        config = tiny_dataset.config
        flat = tiny_dataset.features.flat(np.arange(5))
        condition = tiny_dataset.features.condition(np.arange(5))
        assert flat.shape == (5, config.flat_dim)
        assert condition.shape == (5, config.condition_dim)

    def test_condition_excludes_target_road(self, tiny_series):
        """E is the *additional* data: zeroing adjacency empties its speeds."""
        config = FeatureConfig(
            mask=FactorMask(adjacent=False, event=False, weather=False, time=False)
        )
        features = build_features(tiny_series, config)
        condition = features.condition(np.arange(10))
        np.testing.assert_allclose(condition, 0.0)

    def test_image_sequences_transposed(self, tiny_dataset):
        seqs = tiny_dataset.features.image_sequences(np.arange(3))
        config = tiny_dataset.config
        assert seqs.shape == (3, config.alpha, config.image_rows)
        np.testing.assert_allclose(seqs[0].T, tiny_dataset.features.images[0])

    def test_series_too_short_raises(self, tiny_series):
        short = tiny_series.slice_steps(0, 10)
        with pytest.raises(ValueError, match="too short"):
            build_features(short, FeatureConfig())

    def test_fit_scalers_on_subset(self, tiny_series):
        train_steps = np.arange(0, 500)
        scalers = fit_scalers(tiny_series, train_steps)
        full = fit_scalers(tiny_series)
        assert scalers.speed.maximum <= full.speed.maximum
