"""Property suite for graph-neighbourhood windows (Issue 10's pinning tests).

Three families of invariants:

* **Layout** — the canonical BFS-ordered padded layout is deterministic,
  places every target at ``target_row``, and its real rows are exactly
  the graph's ``k_hop_neighbourhood`` on randomized ``grid_city`` and
  ``ring_and_spokes`` topologies.
* **Masking** — padding rows are exactly zero and speeds of segments
  *outside* a target's k-hop set can never leak into its windows
  (perturbing them leaves the windows bitwise unchanged).
* **Corridor reduction** — on a :func:`from_corridor` path graph the
  layout row of an interior target is ``[s-k .. s+k]`` and the whole
  training path (windows, split, rollouts, fitted weights) reproduces
  the corridor pipeline bitwise, pinned down to ``model_fingerprint``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.model import APOTS
from repro.core.zoo import model_fingerprint
from repro.data import FeatureConfig, TrafficDataset
from repro.data.features import build_features
from repro.data.graph_features import (
    GraphFeatureConfig,
    GraphTrafficDataset,
    GraphWindowLayout,
    build_graph_features,
)
from repro.network import from_corridor, graph_window_layout, grid_city, ring_and_spokes
from repro.network.waves import simulate_network
from repro.traffic.types import SimulationConfig

#: Randomized topologies for the property tests: (graph factory, k).
TOPOLOGIES = [
    pytest.param(lambda: grid_city(3, 3, seed=0), 1, id="grid3x3-k1"),
    pytest.param(lambda: grid_city(3, 4, seed=1), 2, id="grid3x4-k2"),
    pytest.param(lambda: grid_city(4, 4, seed=2), 2, id="grid4x4-k2"),
    pytest.param(lambda: grid_city(4, 4, seed=3), 3, id="grid4x4-k3"),
    pytest.param(lambda: ring_and_spokes(4, seed=4), 2, id="ring4-k2"),
    pytest.param(lambda: ring_and_spokes(6, seed=5), 1, id="ring6-k1"),
    pytest.param(lambda: ring_and_spokes(5, seed=6), 3, id="ring5-k3"),
]


class TestLayoutProperties:
    @pytest.mark.parametrize("factory, k", TOPOLOGIES)
    def test_rows_are_exactly_the_k_hop_sets(self, factory, k):
        graph = factory()
        layout = graph_window_layout(graph, k)
        for s in range(len(graph)):
            assert layout.valid_rows(s) == tuple(graph.k_hop_neighbourhood(s, k))

    @pytest.mark.parametrize("factory, k", TOPOLOGIES)
    def test_canonical_alignment(self, factory, k):
        # Target pinned at target_row; lower ids right-aligned below it,
        # upper ids left-aligned above it, padding only at the flanks.
        graph = factory()
        layout = graph_window_layout(graph, k)
        p = layout.target_row
        for s in range(len(graph)):
            row = layout.rows[s]
            assert row[p] == s
            lower = [t for t in row[:p] if t >= 0]
            upper = [t for t in row[p + 1 :] if t >= 0]
            assert all(t < s for t in lower) and lower == sorted(lower)
            assert all(t > s for t in upper) and upper == sorted(upper)
            # Right/left alignment: padding never interleaves real ids.
            assert list(row[:p])[: p - len(lower)] == [-1] * (p - len(lower))
            assert list(row[p + 1 + len(upper) :]) == [-1] * (
                layout.num_rows - p - 1 - len(upper)
            )

    @pytest.mark.parametrize("factory, k", TOPOLOGIES)
    def test_deterministic(self, factory, k):
        graph = factory()
        assert graph_window_layout(graph, k) == graph_window_layout(factory(), k)

    def test_rows_array_and_mask_agree(self):
        layout = graph_window_layout(grid_city(3, 3, seed=0), 2)
        assert np.array_equal(layout.row_mask, layout.rows_array >= 0)
        assert layout.rows_array.shape == (layout.num_segments, layout.num_rows)

    def test_validation_rejects_malformed_neighbourhoods(self):
        with pytest.raises(ValueError, match="include itself"):
            GraphWindowLayout.from_neighbourhoods([[1]], num_segments=1, k=1)
        with pytest.raises(ValueError, match="sorted and unique"):
            GraphWindowLayout.from_neighbourhoods([[1, 0], [0, 1]], num_segments=2, k=1)

    def test_validation_rejects_misplaced_target(self):
        with pytest.raises(ValueError, match="target_row"):
            GraphWindowLayout(
                num_segments=2, k=1, target_row=0, num_rows=2, rows=((1, 0), (0, 1))
            )
        with pytest.raises(ValueError, match="unknown segment"):
            GraphWindowLayout(
                num_segments=2, k=1, target_row=0, num_rows=2, rows=((0, 5), (1, -1))
            )


@pytest.fixture(scope="module")
def city():
    return grid_city(3, 3, seed=0)  # 24 segments


@pytest.fixture(scope="module")
def city_series(city):
    return simulate_network(city, SimulationConfig(num_days=1, seed=11))


class TestMaskCorrectness:
    """Padding masks never leak speeds from outside the k-hop set."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_outside_speeds_cannot_leak(self, city, city_series, k):
        config = GraphFeatureConfig(layout=graph_window_layout(city, k))
        target = city.target_index
        features = build_graph_features(city_series, config, [target])
        hood = set(city.k_hop_neighbourhood(target, k))
        outside = [s for s in range(len(city)) if s not in hood]
        assert outside  # property is vacuous otherwise
        speeds = city_series.speeds.copy()
        speeds[outside] = 1e6  # absurd values: any leak is loud
        mutated = dataclasses.replace(city_series, speeds=speeds)
        again = build_graph_features(mutated, config, [target], features.scalers)
        assert np.array_equal(again.images, features.images)
        assert np.array_equal(again.targets, features.targets)
        assert np.array_equal(again.targets_kmh, features.targets_kmh)

    def test_padding_rows_are_exactly_zero(self, city, city_series):
        k = 2
        layout = graph_window_layout(city, k)
        config = GraphFeatureConfig(layout=layout)
        padded = [
            s for s in range(len(city)) if len(layout.valid_rows(s)) < layout.num_rows
        ]
        assert padded  # a 3x3 grid has corner segments with short hoods
        features = build_graph_features(city_series, config, padded)
        per = features.windows_per_target
        for i, s in enumerate(padded):
            rows = layout.rows_array[s]
            block = features.images[i * per : (i + 1) * per]
            assert not block[:, : layout.num_rows][:, rows < 0].any()
            # Real speed rows are scaled speeds — generically non-zero.
            assert block[:, : layout.num_rows][:, rows >= 0].any()

    def test_inside_speeds_do_change_windows(self, city, city_series):
        # The converse: perturbing an in-neighbourhood segment must show.
        k = 1
        config = GraphFeatureConfig(layout=graph_window_layout(city, k))
        target = city.target_index
        features = build_graph_features(city_series, config, [target])
        neighbour = next(
            t for t in city.k_hop_neighbourhood(target, k) if t != target
        )
        speeds = city_series.speeds.copy()
        speeds[neighbour] += 7.0
        mutated = dataclasses.replace(city_series, speeds=speeds)
        again = build_graph_features(mutated, config, [target], features.scalers)
        assert not np.array_equal(again.images, features.images)


@pytest.fixture(scope="module")
def corridor_graph(tiny_series):
    return from_corridor(tiny_series.corridor)


@pytest.fixture(scope="module")
def graph_config(corridor_graph):
    # Same geometry as FeatureConfig(): k = m = 2, alpha = 12, beta = 1.
    return GraphFeatureConfig(layout=graph_window_layout(corridor_graph, 2))


class TestCorridorReduction:
    """`from_corridor` graphs reproduce the ±m corridor windows bitwise."""

    def test_interior_rows_are_the_corridor_window(self, tiny_series, graph_config):
        layout = graph_config.layout
        k = layout.k
        for s in range(k, tiny_series.num_segments - k):
            assert layout.rows[s] == tuple(range(s - k, s + k + 1))
        target = tiny_series.corridor.target_index
        assert list(layout.rows[target]) == tiny_series.corridor.adjacent_indices(k)

    def test_windows_bitwise_equal(self, tiny_series, tiny_dataset, graph_config):
        target = tiny_series.corridor.target_index
        corridor = build_features(tiny_series, FeatureConfig(), tiny_dataset.features.scalers)
        graph = build_graph_features(
            tiny_series, graph_config, [target], tiny_dataset.features.scalers
        )
        assert np.array_equal(graph.images, corridor.images)
        assert np.array_equal(graph.day_types, corridor.day_types)
        assert np.array_equal(graph.targets, corridor.targets)
        assert np.array_equal(graph.targets_kmh, corridor.targets_kmh)
        assert np.array_equal(graph.last_input_kmh, corridor.last_input_kmh)
        assert np.array_equal(graph.target_steps, corridor.target_steps)

    def test_dataset_surface_bitwise_equal(self, tiny_series, tiny_dataset, graph_config):
        graph_ds = GraphTrafficDataset(tiny_series, graph_config, seed=5)
        for subset in ("train", "validation", "test"):
            assert np.array_equal(graph_ds.subset(subset), tiny_dataset.subset(subset))
        indices = tiny_dataset.subset("test")[:16]
        ours, theirs = graph_ds.batch(indices), tiny_dataset.batch(indices)
        assert np.array_equal(ours.images, theirs.images)
        assert np.array_equal(ours.flat, theirs.flat)
        assert np.array_equal(ours.targets, theirs.targets)
        anchors = tiny_dataset.rollout_anchors("train")
        assert np.array_equal(graph_ds.rollout_anchors("train"), anchors)
        ours_r = graph_ds.rollout_batch(anchors[:8])
        theirs_r = tiny_dataset.rollout_batch(anchors[:8])
        assert np.array_equal(ours_r.group_images, theirs_r.group_images)
        assert np.array_equal(ours_r.condition, theirs_r.condition)

    def test_training_fingerprint_parity(self, tiny_series, tiny_dataset, graph_config,
                                         micro_preset):
        # The acceptance criterion: graph training on a from_corridor
        # layout is bitwise-identical to corridor training.
        graph_ds = GraphTrafficDataset(tiny_series, graph_config, seed=5)
        corridor_model = APOTS(
            predictor="F", adversarial=False, features=tiny_dataset.config,
            preset=micro_preset, seed=3,
        ).fit(tiny_dataset)
        graph_model = APOTS(
            predictor="F", adversarial=False, features=graph_config,
            preset=micro_preset, seed=3,
        ).fit(graph_ds)
        assert model_fingerprint(graph_model) == model_fingerprint(corridor_model)


class TestMultiTargetDataset:
    def test_blocks_tile_without_leakage(self, city, city_series):
        config = GraphFeatureConfig(layout=graph_window_layout(city, 1))
        targets = (0, 5, 11)
        ds = GraphTrafficDataset(city_series, config, targets, seed=0)
        block = ds.features.windows_per_target
        assert len(ds.features.segment_ids) == block * len(targets)
        # Every block carries the same time-positions for every subset:
        # a test time for one target is a test time for all of them.
        for subset in ("train", "validation", "test"):
            indices = ds.subset(subset)
            assert np.array_equal(
                np.unique(indices % block), np.unique(getattr(ds._base_split, subset))
            )
        # Rollout groups never cross a block boundary.
        anchors = ds.rollout_anchors("train")
        if len(anchors):
            ds.rollout_batch(anchors)  # must not raise

    def test_duplicate_targets_rejected(self, city, city_series):
        config = GraphFeatureConfig(layout=graph_window_layout(city, 1))
        with pytest.raises(ValueError, match="unique"):
            build_graph_features(city_series, config, [0, 0])

    def test_layout_series_mismatch_rejected(self, city_series):
        other = graph_window_layout(grid_city(4, 4, seed=0), 1)
        with pytest.raises(ValueError, match="segments"):
            build_graph_features(city_series, GraphFeatureConfig(layout=other), [0])

    def test_model_rejects_mismatched_graph_config(self, city, city_series, micro_preset):
        config = GraphFeatureConfig(layout=graph_window_layout(city, 1))
        other = GraphFeatureConfig(layout=graph_window_layout(city, 2))
        ds = GraphTrafficDataset(city_series, config, seed=0)
        model = APOTS(predictor="F", adversarial=False, features=other,
                      preset=micro_preset, seed=0)
        with pytest.raises(ValueError, match="feature geometry"):
            model.fit(ds)
