"""Property-based tests of pipeline invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import FeatureConfig, split_windows
from repro.data.split import consecutive_runs
from repro.metrics import classify_regimes


@settings(max_examples=40, deadline=None)
@given(
    num_windows=st.integers(min_value=50, max_value=3000),
    test_fraction=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_split_partitions_never_overlap(num_windows, test_fraction, seed):
    split = split_windows(
        num_windows, test_fraction=test_fraction, rng=np.random.default_rng(seed)
    )
    train, val, test = set(split.train.tolist()), set(split.validation.tolist()), set(split.test.tolist())
    assert not (train & test) and not (val & test) and not (train & val)
    assert (train | val | test) <= set(range(num_windows))


@settings(max_examples=40, deadline=None)
@given(
    num_windows=st.integers(min_value=200, max_value=3000),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_split_train_windows_respect_overlap_radius(num_windows, seed):
    split = split_windows(num_windows, window_span=13, rng=np.random.default_rng(seed))
    if len(split.train) and len(split.test):
        distances = np.abs(split.train[:, None] - split.test[None, :])
        assert distances.min() >= 13


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=0, max_size=80, unique=True))
def test_consecutive_runs_cover_input_exactly(indices):
    runs = consecutive_runs(np.array(sorted(indices), dtype=int), min_length=1)
    flattened = sorted(int(i) for run in runs for i in run)
    assert flattened == sorted(indices)
    for run in runs:
        assert np.all(np.diff(run) == 1)


@settings(max_examples=40, deadline=None)
@given(
    alpha=st.integers(min_value=2, max_value=24),
    beta=st.integers(min_value=1, max_value=12),
    m=st.integers(min_value=0, max_value=4),
)
def test_feature_config_dimension_identities(alpha, beta, m):
    config = FeatureConfig(alpha=alpha, beta=beta, m=m)
    assert config.num_roads == 2 * m + 1
    assert config.image_rows == config.num_roads + 4
    assert config.flat_dim == config.image_rows * alpha + 4
    assert config.condition_dim == config.flat_dim - alpha


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=10.0, max_value=110.0, allow_nan=False, width=64),
        min_size=1,
        max_size=60,
    ),
    st.floats(min_value=0.05, max_value=0.9),
)
def test_regimes_partition_for_any_speeds(last_speeds, theta):
    last = np.array(last_speeds)
    target = last[::-1].copy()
    masks = classify_regimes(last, target, theta=theta)
    total = (
        masks.normal.astype(int)
        + masks.abrupt_acceleration.astype(int)
        + masks.abrupt_deceleration.astype(int)
    )
    np.testing.assert_array_equal(total, 1)
    assert masks.whole.sum() == len(last)
