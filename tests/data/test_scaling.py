"""Tests for feature scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import LogStandardScaler, MinMaxScaler, StandardScaler, scaler_from_state


class TestStatePersistence:
    @pytest.mark.parametrize(
        "scaler_cls", [MinMaxScaler, StandardScaler, LogStandardScaler]
    )
    def test_fitted_state_roundtrips(self, scaler_cls):
        data = np.array([3.0, 7.0, 11.0, 40.0])
        scaler = scaler_cls().fit(data)
        restored = scaler_from_state(scaler.state_dict())
        assert type(restored) is scaler_cls
        np.testing.assert_array_equal(restored.transform(data), scaler.transform(data))

    def test_unfitted_state_roundtrips(self):
        restored = scaler_from_state(MinMaxScaler().state_dict())
        with pytest.raises(RuntimeError, match="before fit"):
            restored.transform(np.array([1.0]))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scaler kind"):
            scaler_from_state({"kind": "RobustScaler"})


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        scaler = MinMaxScaler().fit(np.array([10.0, 20.0, 30.0]))
        out = scaler.transform(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_roundtrip(self):
        data = np.array([3.0, 7.0, 11.0])
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_fit_transform(self):
        out = MinMaxScaler().fit_transform(np.array([0.0, 5.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_constant_input_does_not_divide_by_zero(self):
        scaler = MinMaxScaler().fit(np.full(5, 7.0))
        out = scaler.transform(np.full(5, 7.0))
        assert np.all(np.isfinite(out))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones(3))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.array([]))

    def test_extrapolates_outside_fit_range(self):
        scaler = MinMaxScaler().fit(np.array([0.0, 10.0]))
        assert scaler.transform(np.array([20.0]))[0] == pytest.approx(2.0)


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        data = np.random.default_rng(0).normal(5.0, 3.0, size=1000)
        out = StandardScaler().fit_transform(data)
        assert abs(out.mean()) < 1e-10
        assert abs(out.std() - 1.0) < 1e-10

    def test_roundtrip(self):
        data = np.array([1.0, 2.0, 9.0])
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_input(self):
        out = StandardScaler().fit_transform(np.full(4, 3.0))
        np.testing.assert_allclose(out, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.ones(2))


class TestLogStandardScaler:
    def test_roundtrip(self):
        data = np.array([0.0, 0.5, 2.0, 10.0])
        scaler = LogStandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-10)

    def test_compresses_heavy_tail(self):
        data = np.array([0.0, 0.1, 0.2, 50.0])
        out = LogStandardScaler().fit_transform(data)
        raw = StandardScaler().fit_transform(data)
        assert out.max() < raw.max()


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(min_value=2, max_value=30),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
    )
)
def test_minmax_roundtrip_property(data):
    scaler = MinMaxScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    np.testing.assert_allclose(recovered, data, rtol=1e-9, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.integers(min_value=2, max_value=30),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
    )
)
def test_standard_roundtrip_property(data):
    scaler = StandardScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    np.testing.assert_allclose(recovered, data, rtol=1e-9, atol=1e-6)
