"""Tests for window splitting and overlap discarding."""

import numpy as np
import pytest

from repro.data import SplitIndices, consecutive_runs, split_windows


class TestSplitWindows:
    def test_partitions_disjoint(self):
        split = split_windows(2000, rng=np.random.default_rng(0))
        train, val, test = map(set, (split.train.tolist(), split.validation.tolist(), split.test.tolist()))
        assert not train & test
        assert not val & test
        assert not train & val

    def test_test_fraction_roughly_honoured(self):
        split = split_windows(5000, test_fraction=0.2, rng=np.random.default_rng(1))
        assert 0.15 < len(split.test) / 5000 < 0.25

    def test_validation_carved_from_train(self):
        split = split_windows(5000, validation_fraction=0.2, rng=np.random.default_rng(2))
        total_train = len(split.train) + len(split.validation)
        assert 0.1 < len(split.validation) / total_train < 0.3

    def test_blocks_strategy_discards_overlapping_train(self):
        split = split_windows(3000, strategy="blocks", window_span=13, rng=np.random.default_rng(3))
        test_set = set(split.test.tolist())
        for index in np.concatenate([split.train, split.validation]):
            for offset in range(1, 13):
                # No train window within the overlap radius of a test window.
                assert index + offset not in test_set or index + offset >= index + 13 or True
        # Direct check: min distance from any train index to any test index.
        distances = np.abs(split.train[:, None] - split.test[None, :])
        assert distances.min() >= 13

    def test_random_strategy(self):
        split = split_windows(
            2000, strategy="random", overlap_radius=2, rng=np.random.default_rng(4)
        )
        distances = np.abs(split.train[:, None] - split.test[None, :])
        assert distances.min() >= 2
        assert len(split.train) > 0

    def test_blocks_leave_long_train_runs(self):
        split = split_windows(5000, strategy="blocks", window_span=13, rng=np.random.default_rng(5))
        runs = consecutive_runs(split.train, min_length=12)
        assert sum(len(r) for r in runs) > 0.5 * len(split.train)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            split_windows(100, strategy="bogus")

    @pytest.mark.parametrize("kwargs", [{"num_windows": 0}, {"test_fraction": 0.0}, {"test_fraction": 1.0}])
    def test_invalid_arguments(self, kwargs):
        defaults = dict(num_windows=100)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            split_windows(**defaults)

    def test_invalid_block_length(self):
        with pytest.raises(ValueError, match="block_length"):
            split_windows(100, block_length=0)

    def test_deterministic_given_seed(self):
        a = split_windows(1000, rng=np.random.default_rng(42))
        b = split_windows(1000, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.test, b.test)
        np.testing.assert_array_equal(a.train, b.train)

    def test_sizes_property(self):
        split = split_windows(1000, rng=np.random.default_rng(6))
        assert split.sizes == (len(split.train), len(split.validation), len(split.test))


class TestSplitIndicesValidation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            SplitIndices(
                train=np.array([1, 2]), validation=np.array([3]), test=np.array([2, 4])
            )


class TestConsecutiveRuns:
    def test_basic_grouping(self):
        runs = consecutive_runs(np.array([1, 2, 3, 7, 8, 20]), min_length=2)
        assert [r.tolist() for r in runs] == [[1, 2, 3], [7, 8]]

    def test_min_length_filters(self):
        runs = consecutive_runs(np.array([1, 2, 3, 7, 8, 20]), min_length=3)
        assert [r.tolist() for r in runs] == [[1, 2, 3]]

    def test_empty(self):
        assert consecutive_runs(np.array([], dtype=int), min_length=1) == []

    def test_unsorted_input_handled(self):
        runs = consecutive_runs(np.array([3, 1, 2]), min_length=3)
        assert [r.tolist() for r in runs] == [[1, 2, 3]]
