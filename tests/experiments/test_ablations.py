"""Tests for the ablation harness (structure, not accuracy)."""

import numpy as np
import pytest

from repro.experiments import ablations


class TestAblationResult:
    def test_best(self):
        result = ablations.AblationResult(name="demo", mape={"a": 3.0, "b": 1.0})
        assert result.best() == ("b", 1.0)

    def test_render_with_abrupt(self):
        result = ablations.AblationResult(
            name="demo", mape={"a": 3.0}, abrupt_mape={"a": 9.0}
        )
        text = result.render()
        assert "Ablation: demo" in text
        assert "abrupt" in text

    def test_render_without_abrupt(self):
        result = ablations.AblationResult(name="demo", mape={"a": 3.0})
        assert "abrupt" not in result.render()


class TestLossRatio:
    def test_settings_and_paper_label(self, micro_preset):
        result = ablations.loss_ratio_ablation(
            preset=micro_preset, seed=1, ratios=(1.0, 12.0)
        )
        assert len(result.mape) == 2
        assert any("paper: alpha" in label for label in result.mape)
        assert all(np.isfinite(v) for v in result.mape.values())


class TestDiscriminatorInput:
    def test_both_variants_run(self, micro_preset):
        result = ablations.discriminator_input_ablation(preset=micro_preset, seed=1)
        assert set(result.mape) == {"sequence (alpha)", "single speed"}

    def test_single_speed_discriminator_dimension(self):
        from repro.core import Discriminator, table1_spec
        from repro.data import FeatureConfig
        from repro.nn import Linear

        disc = Discriminator(
            FeatureConfig(),
            spec=table1_spec("F", 0.05),
            conditional=False,
            sequence_length=1,
            rng=np.random.default_rng(0),
        )
        first = next(m for m in disc.net if isinstance(m, Linear))
        assert first.in_features == 1

    def test_invalid_sequence_length(self):
        from repro.core import Discriminator
        from repro.data import FeatureConfig

        with pytest.raises(ValueError):
            Discriminator(FeatureConfig(), sequence_length=0)
        with pytest.raises(ValueError):
            Discriminator(FeatureConfig(), sequence_length=13)


class TestConditioning:
    def test_variants(self, micro_preset):
        result = ablations.conditioning_ablation(preset=micro_preset, seed=1, kind="F")
        assert set(result.mape) == {"conditional (Eq 4)", "unconditional"}


class TestAdjacency:
    def test_m_sweep(self, micro_preset):
        result = ablations.adjacency_ablation(preset=micro_preset, seed=1, kind="F", ms=(0, 1))
        assert set(result.mape) == {"m=0", "m=1"}


class TestHorizon:
    def test_beta_sweep(self, micro_preset):
        result = ablations.horizon_ablation(preset=micro_preset, seed=1, kind="F", betas=(1, 3))
        assert set(result.mape) == {"beta=1 (5 min)", "beta=3 (15 min)"}
