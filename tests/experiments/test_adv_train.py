"""End-to-end regression for the ``adv_train`` paired-sweep experiment.

This is the acceptance gate for the adversarial-training tentpole: on a
fixed micro preset and seed the hardened model's attacked MAE must be
no worse than the baseline's at *every* swept epsilon, the clean-MAE
price must stay within 10%, and a recorded run must produce a
schema-valid obs log carrying the new ``adv_train_step`` and
``robustness_delta`` event kinds.
"""

import json

import pytest

from repro.experiments import adv_train
from repro.experiments.registry import run_experiment
from repro.obs import RunRecorder, use_recorder, validate_run_dir


#: The acceptance gate runs at the real smoke preset: the micro preset
#: trains too little for hardening to reliably beat run-to-run noise,
#: while smoke (3 epochs, 12 steps) does — and still runs in <1s.
@pytest.fixture(scope="class")
def result():
    return adv_train.run(preset="smoke", seed=2018, attack="pgd", epsilon=5.0)


class TestAdvTrainRun:
    def test_sweeps_cover_half_one_and_double_epsilon(self, result):
        assert [d.epsilon_kmh for d in result.deltas] == [2.5, 5.0, 10.0]
        assert [r.epsilon_kmh for r in result.before.results] == [2.5, 5.0, 10.0]
        assert [r.epsilon_kmh for r in result.after.results] == [2.5, 5.0, 10.0]

    def test_attacked_mae_improves_at_every_epsilon(self, result):
        for delta in result.deltas:
            assert delta.attacked_mae_after <= delta.attacked_mae_before
        assert result.all_improved

    def test_clean_mae_degrades_at_most_ten_percent(self, result):
        assert result.clean_degradation <= 0.10

    def test_trained_against_fgsm_evaluated_against_pgd(self, result):
        # Robustness must transfer to an attack unseen in training.
        assert result.train_attack == "fgsm"
        assert result.eval_attack == "pgd"
        assert all(r.attack == "pgd" for r in result.before.results)

    def test_render_reports_the_verdict(self, result):
        text = result.render()
        assert "Adversarial re-training" in text
        assert "hardening verdict" in text
        assert "improved at every swept epsilon" in text

    def test_rejects_non_positive_epsilon(self, micro_preset):
        with pytest.raises(ValueError, match="epsilon"):
            adv_train.run(preset=micro_preset, seed=1, epsilon=-1.0)


class TestRecordedRun:
    def test_schema_valid_log_with_new_event_kinds(self, micro_preset, tmp_path):
        with RunRecorder(tmp_path / "run") as recorder:
            with use_recorder(recorder):
                result = run_experiment(
                    "adv_train", preset=micro_preset, seed=1,
                    attack="pgd", epsilon=5.0,
                )
        assert validate_run_dir(tmp_path / "run") == []
        lines = (tmp_path / "run" / "events.jsonl").read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        # The hardened fit emits per-batch augmentation telemetry...
        assert "adv_train_step" in kinds
        # ...both sweeps emit their summaries (2 sweeps x 3 epsilons)...
        assert kinds.count("robustness_summary") == 6
        # ...and the pairing emits one delta per grid point, in order.
        deltas = [json.loads(line) for line in lines
                  if json.loads(line)["kind"] == "robustness_delta"]
        assert [d["epsilon"] for d in deltas] == [2.5, 5.0, 10.0]
        for event, delta in zip(deltas, result.deltas):
            assert event["attacked_mae_before"] == delta.attacked_mae_before
            assert event["attacked_mae_after"] == delta.attacked_mae_after

    def test_adv_train_steps_describe_mixed_batches(self, micro_preset, tmp_path):
        with RunRecorder(tmp_path / "run") as recorder:
            with use_recorder(recorder):
                run_experiment("adv_train", preset=micro_preset, seed=1)
        steps = [
            json.loads(line)
            for line in (tmp_path / "run" / "events.jsonl").read_text().splitlines()
            if '"adv_train_step"' in line
        ]
        assert steps
        for event in steps:
            assert 0 < event["num_perturbed"] < event["num_samples"]
            assert event["max_abs_delta_kmh"] <= event["epsilon"] + 1e-9


class TestWorkersParity:
    def test_sharded_sweep_matches_serial(self, micro_preset):
        serial = adv_train.run(preset=micro_preset, seed=1, epsilon=5.0, workers=1)
        sharded = adv_train.run(preset=micro_preset, seed=1, epsilon=5.0, workers=2)
        assert serial.render() == sharded.render()
        for ours, theirs in zip(serial.deltas, sharded.deltas):
            assert ours == theirs
