"""End-to-end CLI tests: the module runner drives real experiments."""

import pytest

from repro.core import config
from repro.experiments import scenario
from repro.experiments.cli import main
from repro.experiments.registry import run_experiment
from tests.conftest import MICRO_PRESET


@pytest.fixture(autouse=True)
def micro_presets(monkeypatch):
    for name in list(config.PRESETS):
        monkeypatch.setitem(config.PRESETS, name, MICRO_PRESET)
    scenario.clear_model_cache()


class TestCliRunsExperiments:
    def test_fig1_via_cli(self, capsys):
        assert main(["fig1", "--preset", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "done in" in out

    def test_ablation_via_cli(self, capsys):
        assert main(["ablation_horizon", "--preset", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["fig99", "--preset", "smoke"])


class TestRegistryDispatch:
    @pytest.mark.parametrize(
        "name",
        ["ablation_loss_ratio", "ablation_disc_input", "ablation_adjacency", "ablation_horizon"],
    )
    def test_ablations_dispatch(self, name):
        result = run_experiment(name, preset="smoke", seed=1)
        assert "Ablation" in result.render()

    def test_seed_defaulting(self):
        result = run_experiment("fig1", preset="smoke")
        assert result.render()
