"""End-to-end CLI tests: the module runner drives real experiments."""

import pytest

from repro.core import config
from repro.experiments import scenario
from repro.experiments.cli import main
from repro.experiments.registry import run_experiment
from tests.conftest import MICRO_PRESET


@pytest.fixture(autouse=True)
def micro_presets(monkeypatch):
    for name in list(config.PRESETS):
        monkeypatch.setitem(config.PRESETS, name, MICRO_PRESET)
    scenario.clear_model_cache()


class TestCliRunsExperiments:
    def test_fig1_via_cli(self, capsys):
        assert main(["fig1", "--preset", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "done in" in out

    def test_ablation_via_cli(self, capsys):
        assert main(["ablation_horizon", "--preset", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["fig99", "--preset", "smoke"])

    def test_obs_dir_records_run_log(self, capsys, tmp_path):
        from repro.obs import validate_run_dir

        obs_dir = tmp_path / "runs"
        code = main(
            ["ablation_conditioning", "--preset", "smoke", "--seed", "1", "--obs-dir", str(obs_dir)]
        )
        assert code == 0
        run_dir = obs_dir / "ablation_conditioning"
        assert validate_run_dir(run_dir) == []
        events = run_dir.joinpath("events.jsonl").read_text()
        assert '"model_fit"' in events
        assert '"adv_epoch"' in events
        out = capsys.readouterr().out
        assert "[obs] run" in out


class TestAttackCliFlags:
    """The --attack/--epsilon/--workers knobs reach the runners."""

    def test_robustness_via_cli_with_attack_flags(self, capsys):
        code = main(
            ["robustness", "--preset", "smoke", "--seed", "1",
             "--attack", "fgsm", "--epsilon", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The sweep grid is {0.5, 1, 2} x epsilon, so the chosen budget
        # and attack must show up in the rendered report.
        assert "fgsm" in out
        assert "8.0" in out  # 2 x epsilon row of the sweep table

    def test_adv_train_via_cli_with_attack_flags(self, capsys):
        code = main(
            ["adv_train", "--preset", "smoke", "--seed", "1",
             "--attack", "fgsm", "--epsilon", "4", "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Adversarial re-training" in out
        assert "evaluated against fgsm" in out
        assert "hardening verdict" in out

    def test_rejects_unknown_attack(self, capsys):
        with pytest.raises(SystemExit):
            main(["robustness", "--preset", "smoke", "--attack", "zero-day"])
        assert "invalid choice" in capsys.readouterr().err

    def test_attack_flags_not_forwarded_to_other_experiments(self, capsys):
        # fig1's runner has no `attack` kwarg; the CLI must not pass it.
        code = main(["fig1", "--preset", "smoke", "--seed", "1",
                     "--attack", "fgsm", "--epsilon", "3"])
        assert code == 0
        assert "Fig 1" in capsys.readouterr().out


class TestRegistryDispatch:
    @pytest.mark.parametrize(
        "name",
        ["ablation_loss_ratio", "ablation_disc_input", "ablation_adjacency", "ablation_horizon"],
    )
    def test_ablations_dispatch(self, name):
        result = run_experiment(name, preset="smoke", seed=1)
        assert "Ablation" in result.render()

    def test_seed_defaulting(self):
        result = run_experiment("fig1", preset="smoke")
        assert result.render()
