"""The `continual` experiment at micro: the full loop, deterministically."""

from __future__ import annotations

import pytest

from repro.experiments import continual
from repro.obs import RunRecorder, use_recorder, validate_run_dir


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("continual-run")


@pytest.fixture(scope="module")
def result(micro_preset, run_dir):
    recorder = RunRecorder(run_dir, manifest={"experiment": "continual"})
    with use_recorder(recorder):
        outcome = continual.run(preset=micro_preset, seed=7)
    recorder.close()
    return outcome


class TestContinualLoop:
    def test_drift_is_detected_and_handled(self, result):
        assert result.triggered
        assert result.trigger_monitor in ("error", "input")
        assert result.swapped
        assert result.adapted_fingerprint != result.champion_fingerprint

    def test_adapted_model_recovers(self, result):
        assert result.recovered
        assert (
            result.adapted_mae
            <= continual.RECOVERY_MAE_RATIO * result.oracle_mae
            + continual.RECOVERY_MAE_SLACK_KMH
        )

    def test_sabotage_drill_rolls_back(self, result):
        assert result.rolled_back

    def test_event_trail_covers_both_paths(self, result):
        kinds = set(result.event_kinds)
        assert {
            "mlops_trigger",
            "mlops_retrain_start",
            "mlops_retrain_end",
            "mlops_shadow",
            "mlops_swap",
            "mlops_rollback",
        } <= kinds

    def test_event_log_is_schema_valid(self, result, run_dir):
        assert validate_run_dir(run_dir) == []

    def test_render_mentions_the_loop(self, result):
        text = result.render()
        assert "rollback" in text
        assert "MAE" in text

    def test_deterministic_under_seed(self, result, micro_preset):
        again = continual.run(preset=micro_preset, seed=7)
        assert again.adapted_fingerprint == result.adapted_fingerprint
        assert again.adapted_mae == result.adapted_mae
        assert again.oracle_mae == result.oracle_mae


def test_registered():
    from repro.experiments.registry import EXPERIMENTS

    assert "continual" in EXPERIMENTS


def test_unknown_drift_source_rejected(micro_preset):
    with pytest.raises(ValueError, match="drift_source"):
        continual.run(preset=micro_preset, seed=7, drift_source="weather")


@pytest.fixture(scope="module")
def scenario_run_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("continual-scenario-run")


@pytest.fixture(scope="module")
def scenario_result(micro_preset, scenario_run_dir):
    recorder = RunRecorder(
        scenario_run_dir, manifest={"experiment": "continual-scenario"}
    )
    with use_recorder(recorder):
        outcome = continual.run(preset=micro_preset, seed=7, drift_source="scenario")
    recorder.close()
    return outcome


class TestScenarioDriftSource:
    """The loop driven by a compiled IncidentCascade instead of a regime
    re-parameterisation: same detection/retrain/swap machinery, different
    injected world — with the causal order pinned on the event log."""

    def test_cascade_drift_is_detected_and_handled(self, scenario_result):
        assert scenario_result.triggered
        assert scenario_result.swapped
        assert scenario_result.rolled_back
        assert (
            scenario_result.adapted_fingerprint
            != scenario_result.champion_fingerprint
        )

    def test_event_log_is_schema_valid(self, scenario_result, scenario_run_dir):
        assert validate_run_dir(scenario_run_dir) == []

    def test_causal_event_order(self, scenario_result, scenario_run_dir, micro_preset):
        import json

        from repro.traffic.types import SimulationConfig

        events = [
            json.loads(line)
            for line in (scenario_run_dir / "events.jsonl")
            .read_text()
            .splitlines()
        ]
        by_kind = {}
        for event in events:
            by_kind.setdefault(event["kind"], []).append(event)

        # The cascade is injected when the stream switches from the base
        # series to the scenario-modified one — no trigger may predate it.
        injection_step = SimulationConfig(num_days=micro_preset.num_days).total_steps
        first_trigger = by_kind["mlops_trigger"][0]
        assert first_trigger["step"] >= injection_step

        # Pipeline causality in the recorder's total order:
        # trigger -> retrain start -> retrain end -> shadow -> swap.
        chain = [
            by_kind["mlops_trigger"][0]["seq"],
            by_kind["mlops_retrain_start"][0]["seq"],
            by_kind["mlops_retrain_end"][0]["seq"],
            by_kind["mlops_shadow"][0]["seq"],
            by_kind["mlops_swap"][0]["seq"],
        ]
        assert chain == sorted(chain) and len(set(chain)) == len(chain)

        # The rollback drill happens strictly after the adaptation swap.
        assert by_kind["mlops_rollback"][0]["seq"] > by_kind["mlops_swap"][0]["seq"]

    def test_differs_from_regime_drift(self, scenario_result, result):
        # Different injected worlds must adapt to different champions.
        assert (
            scenario_result.adapted_fingerprint != result.adapted_fingerprint
        )
