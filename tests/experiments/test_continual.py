"""The `continual` experiment at micro: the full loop, deterministically."""

from __future__ import annotations

import pytest

from repro.experiments import continual
from repro.obs import RunRecorder, use_recorder, validate_run_dir


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("continual-run")


@pytest.fixture(scope="module")
def result(micro_preset, run_dir):
    recorder = RunRecorder(run_dir, manifest={"experiment": "continual"})
    with use_recorder(recorder):
        outcome = continual.run(preset=micro_preset, seed=7)
    recorder.close()
    return outcome


class TestContinualLoop:
    def test_drift_is_detected_and_handled(self, result):
        assert result.triggered
        assert result.trigger_monitor in ("error", "input")
        assert result.swapped
        assert result.adapted_fingerprint != result.champion_fingerprint

    def test_adapted_model_recovers(self, result):
        assert result.recovered
        assert (
            result.adapted_mae
            <= continual.RECOVERY_MAE_RATIO * result.oracle_mae
            + continual.RECOVERY_MAE_SLACK_KMH
        )

    def test_sabotage_drill_rolls_back(self, result):
        assert result.rolled_back

    def test_event_trail_covers_both_paths(self, result):
        kinds = set(result.event_kinds)
        assert {
            "mlops_trigger",
            "mlops_retrain_start",
            "mlops_retrain_end",
            "mlops_shadow",
            "mlops_swap",
            "mlops_rollback",
        } <= kinds

    def test_event_log_is_schema_valid(self, result, run_dir):
        assert validate_run_dir(run_dir) == []

    def test_render_mentions_the_loop(self, result):
        text = result.render()
        assert "rollback" in text
        assert "MAE" in text

    def test_deterministic_under_seed(self, result, micro_preset):
        again = continual.run(preset=micro_preset, seed=7)
        assert again.adapted_fingerprint == result.adapted_fingerprint
        assert again.adapted_mae == result.adapted_mae
        assert again.oracle_mae == result.oracle_mae


def test_registered():
    from repro.experiments.registry import EXPERIMENTS

    assert "continual" in EXPERIMENTS
