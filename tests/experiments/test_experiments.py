"""Structural smoke tests of every experiment at micro scale."""

import numpy as np
import pytest

from repro.experiments import fig1, fig4, fig5, fig6, table2, table3
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestFig1:
    def test_runs_and_extracts_episodes(self, micro_preset):
        result = fig1.run(preset=micro_preset, seed=1)
        assert "morning_rush" in result.episodes
        text = result.render()
        assert "Fig 1" in text

    def test_episode_length_is_three_hours(self, micro_preset):
        result = fig1.run(preset=micro_preset, seed=1)
        for episode in result.episodes.values():
            assert len(episode.speeds_kmh) == fig1.EPISODE_STEPS
            assert len(episode.labels) == fig1.EPISODE_STEPS

    def test_morning_rush_window_matches_clock(self, micro_preset):
        result = fig1.run(preset=micro_preset, seed=1)
        episode = result.episodes["morning_rush"]
        start_hour = int(episode.labels[0].split(":")[0])
        assert 5 <= start_hour <= 8

    def test_rush_episode_has_real_drop(self, micro_preset):
        result = fig1.run(preset=micro_preset, seed=1)
        assert result.episodes["morning_rush"].drop > 20.0

    def test_unknown_episode_name(self, micro_preset):
        from repro.experiments.scenario import get_series

        with pytest.raises(ValueError):
            fig1.find_episode(get_series(micro_preset, 1), "tsunami")


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, micro_preset):
        return fig4.run(preset=micro_preset, seed=1, predictors=("F",))

    def test_variants_present(self, result):
        assert set(result.mape) == {"F", "Adv F"}

    def test_all_regimes_scored(self, result):
        assert set(result.mape["F"]) == {"whole", "normal", "abrupt_acc", "abrupt_dec"}

    def test_render_mentions_regimes(self, result):
        text = result.render()
        assert "Abrupt dec" in text and "Adv F" in text

    def test_improvement_helper(self, result):
        value = result.improvement("F", "whole")
        assert np.isfinite(value) or np.isnan(value)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, micro_preset):
        return fig5.run(preset=micro_preset, seed=1, predictors=("F",))

    def test_all_configurations_present(self, result):
        assert set(result.mape) == set(fig5.CONFIGURATIONS)

    def test_gain_helper(self, result):
        assert np.isfinite(result.gain_over_speed_only("Both", "F"))

    def test_render(self, result):
        assert "Fig 5" in result.render()


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, micro_preset):
        # Two codes keep the test fast; the full bench runs all eight.
        out = table2.Table2Result()
        out.mape = {"S": 20.0, "ST": 15.0}
        return out

    def test_gain_relative_to_s(self, result):
        assert result.gain("ST") == pytest.approx(25.0)
        assert result.gain("S") == 0.0

    def test_run_micro(self, micro_preset):
        result = table2.run(preset=micro_preset, seed=1, kind="F")
        assert set(result.mape) == set(table2.CODES)
        assert "Table II" in result.render()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, micro_preset):
        return table3.run(preset=micro_preset, seed=1, kinds=("F",), include_prophet=True)

    def test_grid_structure(self, result):
        assert "Prophet" in result.errors and "F" in result.errors
        cell = result.cell("F", "speed_only", "with_adv", "mape")
        assert np.isfinite(cell)

    def test_prophet_has_no_adversarial(self, result):
        assert np.isnan(result.cell("Prophet", "speed_only", "with_adv", "mape"))

    def test_gains_computable(self, result):
        assert np.isfinite(result.column_gain("F", "speed_only", "mape"))
        assert np.isfinite(result.row_gain("F", "with_adv", "mape"))
        assert np.isfinite(result.diagonal_gain("F", "mape"))

    def test_best_model_excludes_prophet_nan(self, result):
        name, value = result.best_model()
        assert name == "F"
        assert np.isfinite(value)

    def test_render(self, result):
        text = result.render()
        assert "Table III [MAPE]" in text
        assert "best full model" in text

    def test_t_tests_on_partial_grid(self, result):
        # One neural model still yields 2 paired cells, enough for a t-test.
        t = result.adversarial_t_test()
        assert 0.0 <= t.p_value <= 1.0
        assert result.neural_models == ["F"]


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, micro_preset):
        return fig6.run(preset=micro_preset, seed=1, predictors=("F",))

    def test_traces_have_all_models(self, result):
        for trace in result.traces.values():
            assert set(trace.predictions) == {"F", "APOTS_F"}

    def test_prediction_lengths_match_episode(self, result):
        for trace in result.traces.values():
            for prediction in trace.predictions.values():
                assert prediction.shape == trace.episode.speeds_kmh.shape

    def test_model_mape_helper(self, result):
        trace = next(iter(result.traces.values()))
        assert np.isfinite(trace.model_mape("F"))

    def test_render(self, result):
        assert "Fig 6" in result.render()


class TestRegistry:
    def test_all_experiments_registered(self):
        paper_artifacts = {"fig1", "fig4", "fig5", "table2", "table3", "fig6"}
        assert paper_artifacts <= set(EXPERIMENTS)
        ablation_ids = {name for name in EXPERIMENTS if name.startswith("ablation_")}
        assert len(ablation_ids) == 5

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self, micro_preset):
        result = run_experiment("fig1", preset=micro_preset, seed=1)
        assert hasattr(result, "render")


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out

    def test_no_args_lists(self, capsys):
        from repro.experiments.cli import main

        assert main([]) == 0
        assert "fig4" in capsys.readouterr().out
