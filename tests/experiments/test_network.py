"""Tests for the ``network`` experiment (registry id, reproducibility)."""

import json

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import RunRecorder, use_recorder, validate_run_dir


@pytest.fixture(scope="module")
def result():
    return run_experiment("network", preset="smoke")


class TestRegistry:
    def test_registered(self):
        assert "network" in EXPERIMENTS
        runner, description = EXPERIMENTS["network"]
        assert "scenario" in description


class TestResult:
    def test_shape(self, result):
        assert result.num_segments == 48
        assert result.scenario_name == "stress"
        assert result.baseline.vkt > 0
        assert len(result.path) > 1
        assert len(result.fingerprint) == 64

    def test_stress_scenario_hurts(self, result):
        assert result.deltas["total_delay_delta_vh"] > 0
        assert result.deltas["mean_speed_delta_kmh"] < 0
        assert result.path_travel_scenario_min >= result.path_travel_baseline_min

    def test_bitwise_reproducible(self, result):
        again = run_experiment("network", preset="smoke")
        assert again.fingerprint == result.fingerprint
        assert again.deltas == result.deltas

    def test_seed_changes_fingerprint(self, result):
        other = run_experiment("network", preset="smoke", seed=7)
        assert other.fingerprint != result.fingerprint

    def test_render(self, result):
        text = result.render()
        assert "baseline KPIs" in text
        assert "stress" in text
        assert "fingerprint" in text


class TestObservability:
    def test_emits_schema_valid_network_events(self, tmp_path):
        with RunRecorder(tmp_path) as recorder, use_recorder(recorder):
            run_experiment("network", preset="smoke")
        assert validate_run_dir(tmp_path) == []
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert kinds.count("network_build") == 1
        assert kinds.count("network_simulate") == 2  # baseline + stress
        assert kinds.count("network_kpis") == 2
