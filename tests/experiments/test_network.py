"""Tests for the ``network`` experiment (registry id, reproducibility)."""

import json

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import RunRecorder, use_recorder, validate_run_dir


@pytest.fixture(scope="module")
def result():
    return run_experiment("network", preset="smoke")


class TestRegistry:
    def test_registered(self):
        assert "network" in EXPERIMENTS
        runner, description = EXPERIMENTS["network"]
        assert "scenario" in description


class TestResult:
    def test_shape(self, result):
        assert result.num_segments == 48
        assert result.scenario_name == "stress"
        assert result.baseline.vkt > 0
        assert len(result.path) > 1
        assert len(result.fingerprint) == 64

    def test_stress_scenario_hurts(self, result):
        assert result.deltas["total_delay_delta_vh"] > 0
        assert result.deltas["mean_speed_delta_kmh"] < 0
        assert result.path_travel_scenario_min >= result.path_travel_baseline_min

    def test_bitwise_reproducible(self, result):
        again = run_experiment("network", preset="smoke")
        assert again.fingerprint == result.fingerprint
        assert again.deltas == result.deltas

    def test_seed_changes_fingerprint(self, result):
        other = run_experiment("network", preset="smoke", seed=7)
        assert other.fingerprint != result.fingerprint

    def test_render(self, result):
        text = result.render()
        assert "baseline KPIs" in text
        assert "stress" in text
        assert "fingerprint" in text


class TestGraphTraining:
    def test_trains_both_model_families(self, result):
        assert set(result.training) == {"F", "APOTS_F"}
        assert result.k == 2
        assert len(result.targets) == 4
        assert all(0 <= t < result.num_segments for t in result.targets)

    def test_fingerprints_are_pinned_format(self, result):
        prints = [entry["fingerprint"] for entry in result.training.values()]
        assert all(len(p) == 24 for p in prints)  # blake2b-12 hex
        assert len(set(prints)) == 2  # adversarial training changed the weights

    def test_reports_per_phase_degradation(self, result):
        for entry in result.training.values():
            degradation = entry["degradation"]
            assert set(degradation) == {"pre", "cascade", "pulse", "front"}
            # The pre phase precedes every scenario element: baseline and
            # stressed streams are near-identical there, so the ratio is
            # ~1 (causal attribution — degradation comes from the
            # scenario, not from the re-simulation).
            assert degradation["pre"] == pytest.approx(1.0, abs=0.01)
            assert entry["stress_phases"]["cascade"]["samples"] > 0
            assert entry["baseline_overall"]["mae"] > 0

    def test_stress_degrades_the_forecast(self, result):
        for entry in result.training.values():
            stressed = [
                entry["degradation"][phase] for phase in ("cascade", "pulse", "front")
            ]
            assert max(stressed) > 1.0

    def test_render_includes_training_table(self, result):
        text = result.render()
        assert "graph-neighbourhood training" in text
        assert "APOTS_F" in text
        assert "cascade" in text


class TestObservability:
    def test_emits_schema_valid_network_events(self, tmp_path):
        with RunRecorder(tmp_path) as recorder, use_recorder(recorder):
            run_experiment("network", preset="smoke")
        assert validate_run_dir(tmp_path) == []
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert kinds.count("network_build") == 1
        assert kinds.count("network_simulate") == 2  # baseline + stress
        assert kinds.count("network_kpis") == 2
        assert kinds.count("network_train") == 2  # F and APOTS_F
        assert kinds.count("network_stress") == 8  # 2 models x 4 phases
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        stress = [e for e in events if e["kind"] == "network_stress"]
        assert {e["model"] for e in stress} == {"F", "APOTS_F"}
        assert {e["phase"] for e in stress} == {"pre", "cascade", "pulse", "front"}
        # Causal order: each model's stress rows follow its own training
        # event (seq is the recorder's total order).
        for model in ("F", "APOTS_F"):
            trained = next(
                e["seq"]
                for e in events
                if e["kind"] == "network_train" and e["model"] == model
            )
            assert all(e["seq"] > trained for e in stress if e["model"] == model)
