"""Tests for the ASCII rendering helpers."""

import numpy as np
import pytest

from repro.experiments.reporting import format_value, render_bars, render_series, render_table


class TestFormatValue:
    def test_float_rounds(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(3.14159, decimals=3) == "3.142"

    def test_nan_is_dash(self):
        assert format_value(float("nan")) == "-"

    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_strings_pass_through(self):
        assert format_value("abc") == "abc"

    def test_ints(self):
        assert format_value(7) == "7"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["model", "mape"], [["F", 21.4], ["H", 12.8]], title="demo")
        assert "demo" in text
        assert "model" in text
        assert "21.40" in text
        assert "12.80" in text

    def test_alignment_consistent(self):
        text = render_table(["a", "b"], [["xx", 1.0], ["y", 22.5]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestRenderBars:
    def test_bars_scale_with_value(self):
        text = render_bars(["x"], {"big": [100.0], "small": [10.0]})
        big_line = next(l for l in text.splitlines() if "big" in l)
        small_line = next(l for l in text.splitlines() if "small" in l)
        assert big_line.count("#") > small_line.count("#")

    def test_nan_rendered_as_dash(self):
        text = render_bars(["x"], {"a": [float("nan")]})
        assert "-" in text

    def test_title_included(self):
        assert render_bars(["x"], {"a": [1.0]}, title="T!").startswith("T!")


class TestRenderSeries:
    def test_all_series_present(self):
        text = render_series(["00:00", "00:05"], {"Real": [1.0, 2.0], "F": [1.5, 2.5]})
        assert "Real" in text and "F" in text
        assert "00:05" in text

    def test_stride_skips_rows(self):
        labels = [f"{i}" for i in range(10)]
        text = render_series(labels, {"v": list(np.arange(10.0))}, stride=5)
        assert "0" in text and "5" in text
        assert len(text.splitlines()) == 3  # header + 2 rows
