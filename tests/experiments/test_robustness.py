"""The robustness experiment: sweep + serving gate drill at micro scale."""

import pytest

from repro.experiments import robustness
from repro.experiments.registry import run_experiment
from repro.obs import RunRecorder, use_recorder, validate_run_dir


@pytest.fixture(scope="class")
def result(micro_preset):
    return robustness.run(preset=micro_preset, seed=1, attack="pgd", epsilon=5.0)


class TestRobustnessRun:
    def test_sweep_covers_half_one_and_double_epsilon(self, result):
        assert [r.epsilon_kmh for r in result.report.results] == [2.5, 5.0, 10.0]

    def test_attacked_strictly_worse_than_clean(self, result):
        for point in result.report.results:
            assert point.attacked["whole"]["mae"] > point.clean["whole"]["mae"]

    def test_budget_respected(self, result):
        for point in result.report.results:
            assert point.max_abs_delta_kmh <= point.epsilon_kmh + 1e-9

    def test_gate_drill_triggers_degradation(self, result):
        assert result.drill.attack_hits > 0
        assert result.drill.gate_degraded_forecasts > 0
        assert result.drill.degraded_during_attack > 0

    def test_render_covers_both_phases(self, result):
        text = result.render()
        assert "Robustness of" in text
        assert "Serving drill" in text and "gate hits" in text

    def test_rejects_non_positive_epsilon(self, micro_preset):
        with pytest.raises(ValueError, match="epsilon"):
            robustness.run(preset=micro_preset, seed=1, epsilon=0.0)


class TestRegistryWiring:
    def test_runs_through_registry_with_kwargs(self, micro_preset, tmp_path):
        with RunRecorder(tmp_path / "run") as recorder:
            with use_recorder(recorder):
                result = run_experiment(
                    "robustness", preset=micro_preset, seed=1,
                    attack="fgsm", epsilon=4.0,
                )
        assert result.attack == "fgsm"
        assert result.epsilon_kmh == 4.0
        assert validate_run_dir(tmp_path / "run") == []
        events = (tmp_path / "run" / "events.jsonl").read_text()
        assert '"robustness_summary"' in events
