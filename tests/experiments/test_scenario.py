"""Tests for shared experiment scaffolding."""

import numpy as np
import pytest

from repro.core.config import PRESETS
from repro.data import FactorMask
from repro.experiments.scenario import (
    get_series,
    make_dataset,
    resolve_preset,
    train_model,
)


class TestResolvePreset:
    def test_by_name(self):
        assert resolve_preset("smoke") is PRESETS["smoke"]

    def test_passthrough(self, micro_preset):
        assert resolve_preset(micro_preset) is micro_preset

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown preset"):
            resolve_preset("warp")


class TestSeriesCaching:
    def test_same_object_returned(self, micro_preset):
        a = get_series(micro_preset, seed=1)
        b = get_series(micro_preset, seed=1)
        assert a is b

    def test_different_seed_not_shared(self, micro_preset):
        a = get_series(micro_preset, seed=1)
        b = get_series(micro_preset, seed=2)
        assert a is not b


class TestMakeDataset:
    def test_masks_share_split(self, micro_preset):
        speed_only = make_dataset(micro_preset, mask=FactorMask.speed_only(), seed=1)
        both = make_dataset(micro_preset, mask=FactorMask.both(), seed=1)
        np.testing.assert_array_equal(speed_only.split.test, both.split.test)
        np.testing.assert_array_equal(speed_only.split.train, both.split.train)

    def test_mask_applied(self, micro_preset):
        ds = make_dataset(micro_preset, mask=FactorMask.speed_only(), seed=1)
        assert not ds.config.mask.adjacent

    def test_default_mask_is_both(self, micro_preset):
        ds = make_dataset(micro_preset, seed=1)
        assert ds.config.mask.uses_additional


class TestTrainModel:
    def test_plain(self, micro_preset):
        ds = make_dataset(micro_preset, mask=FactorMask.speed_only(), seed=1)
        model = train_model("F", ds, micro_preset, adversarial=False, seed=1)
        assert model.name == "F"
        assert model.history is not None

    def test_adversarial_conditionality_follows_mask(self, micro_preset):
        speed_only = make_dataset(micro_preset, mask=FactorMask.speed_only(), seed=1)
        model = train_model("F", speed_only, micro_preset, adversarial=True, seed=1)
        assert model.discriminator is not None
        assert not model.discriminator.conditional  # no additional data -> Eq 1/2

        both = make_dataset(micro_preset, mask=FactorMask.both(), seed=1)
        model = train_model("F", both, micro_preset, adversarial=True, seed=1)
        assert model.discriminator.conditional  # Eq 4
