"""Shared fixtures for the fleet-layer tests.

One micro model is trained and checkpointed once per session; every
fleet in this package is rebuilt from that directory, exactly as
production replicas would be.
"""

from __future__ import annotations

import pytest

from repro import APOTS
from repro.core import save_model
from repro.serving import Observation


def observation_at(series, segment_id: int, step: int) -> Observation:
    """Build the Observation a live feed would emit for one series cell."""
    return Observation(
        segment_id=segment_id,
        step=step,
        speed_kmh=float(series.speeds[segment_id, step]),
        event=float(series.events[segment_id, step]),
        temperature=float(series.temperature[step]),
        precipitation=float(series.precipitation[step]),
        day_type=tuple(series.day_types[step]),
    )


def replay_ticks(fleet, series, steps) -> None:
    """Feed every segment's observations for ``steps`` into a fleet."""
    for step in steps:
        fleet.ingest_many(
            observation_at(series, segment, step)
            for segment in range(series.num_segments)
        )


class FakeClock:
    """A manually advanced monotonic clock; its ``advance`` doubles as
    the loadgen's injectable ``sleep``."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(scope="session")
def fleet_checkpoint(tmp_path_factory, tiny_dataset, micro_preset) -> str:
    """A zoo checkpoint directory for a quickly fitted plain-F model."""
    model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
    model.fit(tiny_dataset)
    directory = tmp_path_factory.mktemp("fleet-checkpoint")
    save_model(model, directory)
    return str(directory)
