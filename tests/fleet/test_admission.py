"""Tests for :class:`repro.fleet.AdmissionController` (bounded queues)."""

from __future__ import annotations

import pytest

from repro.fleet import AdmissionController


class TestAdmissionController:
    def test_admits_until_the_bound_then_sheds(self):
        admission = AdmissionController(2, max_queue_per_shard=3)
        assert [admission.try_admit(0, i) for i in range(5)] == [True] * 3 + [False] * 2
        assert admission.depth(0) == 3
        # The other shard's queue is independent.
        assert admission.try_admit(1, "x") is True
        assert admission.depths() == [3, 1]

    def test_drain_preserves_fifo_order_and_empties(self):
        admission = AdmissionController(1, max_queue_per_shard=8)
        for item in "abcd":
            admission.try_admit(0, item)
        assert admission.drain_shard(0) == list("abcd")
        assert admission.depth(0) == 0
        assert admission.drain_shard(0) == []

    def test_capacity_frees_after_drain(self):
        admission = AdmissionController(1, max_queue_per_shard=2)
        assert admission.try_admit(0, 1) and admission.try_admit(0, 2)
        assert not admission.try_admit(0, 3)
        admission.drain_shard(0)
        assert admission.try_admit(0, 4)

    def test_snapshot_accounts_admitted_shed_and_peaks(self):
        admission = AdmissionController(2, max_queue_per_shard=2)
        for i in range(4):
            admission.try_admit(0, i)
        admission.drain_shard(0)
        admission.try_admit(0, "later")
        snap = admission.snapshot()
        assert snap["max_queue_per_shard"] == 2
        assert snap["admitted"] == [3, 0]
        assert snap["shed_at_admission"] == [2, 0]
        assert snap["peak_queue_depths"] == [2, 0]
        assert snap["queue_depths"] == [1, 0]

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            AdmissionController(0, 4)
        with pytest.raises(ValueError, match="max_queue_per_shard"):
            AdmissionController(1, 0)
