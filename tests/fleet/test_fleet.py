"""Tests for :class:`repro.fleet.ForecastFleet`.

The two load-bearing properties are pinned here: ``predict_many`` is
bitwise-identical across shard counts {1, 2, 4} on a fixed seed, and a
replica crash degrades its shard to naive persistence (observable as a
schema-valid ``fleet_shard_lost`` event) instead of failing the fleet.
"""

from __future__ import annotations

import json

import pytest

from repro.attacks.defense import GateConfig
from repro.fleet import FleetClosedError, FleetError, ForecastFleet
from repro.obs import RunRecorder, validate_run_dir
from repro.serving import (
    IncompleteWindowError,
    Observation,
    StaleObservationError,
    StreamGapError,
    UnknownSegmentError,
)

from tests.fleet.conftest import observation_at, replay_ticks

WARM_TICKS = 15


@pytest.fixture(scope="module")
def warm_trio(fleet_checkpoint, tiny_series):
    """Fleets with shards 1, 2 and 4, all warmed with the same stream."""
    fleets = [
        ForecastFleet(fleet_checkpoint, tiny_series.num_segments, shards=shards)
        for shards in (1, 2, 4)
    ]
    for fleet in fleets:
        replay_ticks(fleet, tiny_series, range(WARM_TICKS))
    yield fleets
    for fleet in fleets:
        fleet.close()


class TestShardCountInvariance:
    def test_predict_many_bitwise_identical_across_shard_counts(self, warm_trio):
        single, two, four = warm_trio
        # Mixed batch: every segment, shuffled, with duplicates — covers
        # model, naive-degraded (edges) and within-batch duplicate paths.
        query = [4, 0, 7, 2, 2, 8, 5, 1, 3, 6, 4]
        reference = single.predict_many(query)
        assert two.predict_many(query) == reference
        assert four.predict_many(query) == reference
        assert {f.source for f in reference} == {"model", "naive"}

    def test_cache_hits_are_also_invariant(self, warm_trio):
        single, two, four = warm_trio
        query = list(range(single.num_segments))
        single.predict_many(query)
        # Second identical call: cache serves it in every layout.
        reference = single.predict_many(query)
        assert any(f.from_cache for f in reference)
        for fleet in (two, four):
            fleet.predict_many(query)
            assert fleet.predict_many(query) == reference

    def test_request_order_is_preserved(self, warm_trio):
        for fleet in warm_trio:
            query = [8, 3, 5, 5, 0, 6, 1]
            results = fleet.predict_many(query)
            assert [f.segment_id for f in results] == query

    def test_ingest_then_predict_stays_invariant_as_stream_advances(
        self, warm_trio, tiny_series
    ):
        single, two, four = warm_trio
        for fleet in warm_trio:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS, WARM_TICKS + 3))
        query = list(range(tiny_series.num_segments))
        reference = single.predict_many(query)
        assert two.predict_many(query) == reference
        assert four.predict_many(query) == reference


class TestFailureDegradation:
    def test_replica_crash_sheds_to_naive_with_event(
        self, fleet_checkpoint, tiny_series, tmp_path
    ):
        recorder = RunRecorder(tmp_path, manifest={"test": "fleet-crash"})
        with ForecastFleet(
            fleet_checkpoint, tiny_series.num_segments, shards=2, recorder=recorder
        ) as fleet:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS))
            query = list(range(tiny_series.num_segments))
            healthy = fleet.predict_many(query, use_cache=False)
            lost_shard = 1
            lo, hi = fleet.shard_map.owned_range(lost_shard)

            fleet.kill_replica(lost_shard)
            results = fleet.predict_many(query, use_cache=False)

            assert fleet.lost_shards == [lost_shard]
            for segment, forecast in zip(query, results):
                if lo <= segment < hi:
                    assert forecast.degraded and forecast.source == "naive"
                    assert "load shed" in forecast.degraded_reason
                    assert "shard 1 lost" in forecast.degraded_reason
                    # Shed persistence answers from the parent's own
                    # bookkeeping: the segment's last observed speed.
                    assert forecast.speed_kmh == float(
                        tiny_series.speeds[segment, WARM_TICKS - 1]
                    )
                else:
                    # The surviving shard still answers at full quality.
                    assert forecast == healthy[segment]
            snap = fleet.snapshot()
            assert snap["lost_shards"] == [lost_shard]
            assert snap["replicas"][lost_shard] is None
            assert snap["telemetry"]["counters"]["shed_shard_lost"] > 0
        recorder.close()

        assert validate_run_dir(tmp_path) == []
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert kinds.count("fleet_shard_lost") == 1
        assert "fleet_shed" in kinds
        lost = next(
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
            if json.loads(line)["kind"] == "fleet_shard_lost"
        )
        assert lost["shard"] == lost_shard
        assert lost["method"] == "predict_batch"

    def test_kill_replica_rejected_on_process_free_fleet(
        self, fleet_checkpoint, tiny_series
    ):
        with ForecastFleet(fleet_checkpoint, tiny_series.num_segments) as fleet:
            with pytest.raises(FleetError, match="process-free"):
                fleet.kill_replica(0)


class TestAdmissionPath:
    def test_submit_sheds_beyond_queue_bound_then_drain_serves(
        self, fleet_checkpoint, tiny_series, tmp_path
    ):
        recorder = RunRecorder(tmp_path, manifest={"test": "fleet-admission"})
        with ForecastFleet(
            fleet_checkpoint,
            tiny_series.num_segments,
            shards=1,
            max_queue_per_shard=2,
            recorder=recorder,
        ) as fleet:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS))
            tickets = fleet.submit([4, 4, 4, 4, 4])
            assert [t.shed for t in tickets] == [False, False, True, True, True]
            for ticket in tickets[2:]:
                assert ticket.done and ticket.forecast.degraded
                assert "queue full" in ticket.forecast.degraded_reason
            resolved = fleet.drain()
            assert len(resolved) == 2
            assert all(t.done and not t.shed for t in tickets[:2])
            assert all(t.forecast.source == "model" for t in tickets[:2])
            assert fleet.drain() == []
            counters = fleet.telemetry.snapshot()["counters"]
            assert counters["shed_queue_full"] == 3
            assert counters["served_requests"] == 2
        recorder.close()
        assert validate_run_dir(tmp_path) == []
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert "fleet_shed" in kinds and "fleet_drain" in kinds

    def test_submitted_tickets_carry_latency_stamps(
        self, fleet_checkpoint, tiny_series, fake_clock
    ):
        with ForecastFleet(
            fleet_checkpoint, tiny_series.num_segments, clock=fake_clock
        ) as fleet:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS))
            tickets = fleet.submit([4], arrival_s=fake_clock())
            fake_clock.advance(0.25)
            fleet.drain()
            assert tickets[0].completed_s - tickets[0].arrival_s == pytest.approx(0.25)


class TestStreamContract:
    def test_cold_segment_raises_incomplete_window(
        self, fleet_checkpoint, tiny_series
    ):
        for shards in (1, 2):
            with ForecastFleet(
                fleet_checkpoint, tiny_series.num_segments, shards=shards
            ) as fleet:
                with pytest.raises(IncompleteWindowError, match="no observations"):
                    fleet.predict_many([4])

    def test_stale_and_gapped_batches_rejected_before_any_mutation(
        self, fleet_checkpoint, tiny_series
    ):
        with ForecastFleet(fleet_checkpoint, tiny_series.num_segments) as fleet:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS))
            stale = observation_at(tiny_series, 4, WARM_TICKS - 1)
            with pytest.raises(StaleObservationError, match="out of order"):
                fleet.ingest_many([stale])
            gapped = observation_at(tiny_series, 4, WARM_TICKS + 5)
            with pytest.raises(StreamGapError, match="skipped steps"):
                fleet.ingest_many([gapped])
            with pytest.raises(UnknownSegmentError, match="outside corridor"):
                fleet.ingest(Observation(99, WARM_TICKS, 80.0))
            # The rejected batches mutated nothing: the stream resumes
            # exactly where it left off.
            replay_ticks(fleet, tiny_series, [WARM_TICKS])
            assert fleet.predict_many([4])[0].source == "model"

    def test_closed_fleet_refuses_cleanly(self, fleet_checkpoint, tiny_series):
        fleet = ForecastFleet(fleet_checkpoint, tiny_series.num_segments)
        fleet.close()
        fleet.close()  # idempotent
        with pytest.raises(FleetClosedError):
            fleet.predict_many([4])
        with pytest.raises(FleetClosedError):
            fleet.ingest(Observation(0, 0, 80.0))

    def test_bad_horizon_rejected(self, fleet_checkpoint, tiny_series):
        with ForecastFleet(fleet_checkpoint, tiny_series.num_segments) as fleet:
            replay_ticks(fleet, tiny_series, range(2))
            with pytest.raises(ValueError, match="horizon"):
                fleet.predict_many([4], horizon_steps=0)


class TestSnapshotAggregation:
    def test_snapshot_aggregates_replica_ranges_and_gate_counts(
        self, fleet_checkpoint, tiny_series
    ):
        with ForecastFleet(
            fleet_checkpoint,
            tiny_series.num_segments,
            shards=2,
            gate_config=GateConfig(max_jump_kmh=15.0),
        ) as fleet:
            replay_ticks(fleet, tiny_series, range(3))
            snap = fleet.snapshot()
            assert snap["shards"] == 2 and snap["lost_shards"] == []
            ranges = [tuple(r["segment_range"]) for r in snap["replicas"]]
            assert ranges == [
                fleet.shard_map.owned_range(0),
                fleet.shard_map.owned_range(1),
            ]
            assert snap["gate_quarantined_total"] == 0

            # An implausible jump quarantines its segment inside one
            # replica; the fleet-level aggregate surfaces it.
            previous = float(tiny_series.speeds[4, 2])
            fleet.ingest_many(
                [
                    observation_at(tiny_series, segment, 3)
                    if segment != 4
                    else Observation(4, 3, previous + 80.0)
                    for segment in range(tiny_series.num_segments)
                ]
            )
            assert fleet.snapshot()["gate_quarantined_total"] >= 1

    def test_local_fleet_snapshot_has_one_full_range_replica(
        self, fleet_checkpoint, tiny_series
    ):
        with ForecastFleet(fleet_checkpoint, tiny_series.num_segments) as fleet:
            replay_ticks(fleet, tiny_series, range(2))
            snap = fleet.snapshot()
            assert len(snap["replicas"]) == 1
            assert snap["replicas"][0]["segment_range"] == [
                0,
                tiny_series.num_segments,
            ]
            assert snap["replicas"][0]["gate_quarantined_count"] == 0
