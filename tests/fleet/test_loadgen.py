"""Tests for :mod:`repro.fleet.loadgen` (deterministic open-loop load).

The schedule must be a pure function of ``(seed, rate)`` plus the shape
knobs — that is what makes saturation sweeps comparable across runs and
machines — and ``run_open_loop`` must resolve every ticket (served or
shed, never dropped) with schema-valid telemetry.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import ArrivalSchedule, ForecastFleet, run_open_loop
from repro.obs import RunRecorder, validate_run_dir

from tests.fleet.conftest import FakeClock

TICKS = 6


def make_schedule(series, *, seed=7, rate=50.0, **overrides):
    kwargs = dict(seed=seed, rate=rate, ticks=TICKS, queries_per_tick=6.0)
    kwargs.update(overrides)
    return ArrivalSchedule.from_series(series, **kwargs)


class TestScheduleDeterminism:
    def test_same_seed_and_rate_reproduce_the_schedule_bitwise(self, tiny_series):
        a = make_schedule(tiny_series)
        b = make_schedule(tiny_series)
        assert a.fingerprint() == b.fingerprint()
        assert a.events == b.events

    def test_different_seed_changes_the_schedule(self, tiny_series):
        assert (
            make_schedule(tiny_series, seed=7).fingerprint()
            != make_schedule(tiny_series, seed=8).fingerprint()
        )

    def test_rate_only_rescales_time(self, tiny_series):
        slow = make_schedule(tiny_series, rate=10.0)
        fast = make_schedule(tiny_series, rate=100.0)
        # Identical arrival *structure* — same kinds, steps and segments
        # in the same order — at 10x compressed timestamps.
        assert [
            (e.kind, e.step, e.segment_ids) for e in slow.events
        ] == [(e.kind, e.step, e.segment_ids) for e in fast.events]
        for s, f in zip(slow.events, fast.events):
            assert f.time_s == pytest.approx(s.time_s / 10.0)
        assert fast.duration_s == pytest.approx(slow.duration_s / 10.0)
        assert fast.num_queries == slow.num_queries
        assert fast.offered_qps == pytest.approx(slow.offered_qps * 10.0)

    def test_every_tick_ingests_before_its_queries(self, tiny_series):
        schedule = make_schedule(tiny_series)
        seen_ingest_for_step = set()
        for event in schedule.events:
            if event.kind == "ingest":
                assert event.segment_ids == tuple(range(tiny_series.num_segments))
                seen_ingest_for_step.add(event.step)
            else:
                assert event.step in seen_ingest_for_step
        assert seen_ingest_for_step == set(range(TICKS))

    def test_burst_sizes_respect_the_cap(self, tiny_series):
        schedule = make_schedule(tiny_series, burst_max=3)
        bursts = [e for e in schedule.events if e.kind == "predict"]
        assert bursts, "expected at least one query burst"
        assert all(1 <= len(e.segment_ids) <= 3 for e in bursts)
        assert schedule.num_queries == sum(len(e.segment_ids) for e in bursts)

    def test_validation(self, tiny_series):
        with pytest.raises(ValueError, match="rate"):
            make_schedule(tiny_series, rate=0.0)
        with pytest.raises(ValueError, match="ticks"):
            make_schedule(tiny_series, ticks=0)
        with pytest.raises(ValueError, match="burst_max"):
            make_schedule(tiny_series, burst_max=0)
        with pytest.raises(ValueError, match="replay window"):
            make_schedule(tiny_series, start_step=tiny_series.num_steps)


class TestRunOpenLoop:
    def test_under_capacity_everything_is_served(
        self, fleet_checkpoint, tiny_series, fake_clock, tmp_path
    ):
        recorder = RunRecorder(tmp_path, manifest={"test": "fleet-loadgen"})
        schedule = make_schedule(tiny_series)
        with ForecastFleet(
            fleet_checkpoint,
            tiny_series.num_segments,
            max_queue_per_shard=256,
            recorder=recorder,
            clock=fake_clock,
        ) as fleet:
            report = run_open_loop(fleet, schedule, sleep=fake_clock.advance)
        recorder.close()

        assert report.offered == schedule.num_queries
        assert report.shed == 0 and report.served == report.offered
        assert report.shed_rate == 0.0
        assert report.served + report.shed == report.offered
        assert report.p50_ms >= 0.0 and report.p99_ms >= report.p50_ms
        assert report.lost_shards == ()
        assert "shed 0 (0.0%)" in report.render()
        assert validate_run_dir(tmp_path) == []
        summaries = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
            if json.loads(line)["kind"] == "fleet_loadgen_summary"
        ]
        assert len(summaries) == 1
        assert summaries[0]["offered"] == report.offered
        assert summaries[0]["rate"] == schedule.rate

    def test_tight_queue_bound_sheds_deterministically(
        self, fleet_checkpoint, tiny_series
    ):
        schedule = make_schedule(tiny_series, queries_per_tick=10.0, burst_max=4)

        def replay():
            clock = FakeClock()
            with ForecastFleet(
                fleet_checkpoint,
                tiny_series.num_segments,
                max_queue_per_shard=1,
                clock=clock,
            ) as fleet:
                return run_open_loop(fleet, schedule, sleep=clock.advance)

        first, second = replay(), replay()
        # Bursts wider than the queue bound shed their overflow within a
        # single submit, independent of wall-clock speed — so the whole
        # report is reproducible, not just the arrival stream.
        assert first.shed > 0
        assert first.shed_rate == pytest.approx(first.shed / first.offered)
        assert (first.offered, first.served, first.shed) == (
            second.offered,
            second.served,
            second.shed,
        )
        assert first.max_queue_depth == second.max_queue_depth == 1

    def test_latency_counts_backlog_wait_against_scheduled_arrival(
        self, fleet_checkpoint, tiny_series, fake_clock
    ):
        schedule = make_schedule(tiny_series, queries_per_tick=4.0)

        def slow_sleep(seconds: float) -> None:
            # A machine that always runs 50 ms behind schedule.
            fake_clock.advance(seconds + 0.05)

        with ForecastFleet(
            fleet_checkpoint, tiny_series.num_segments, clock=fake_clock
        ) as fleet:
            report = run_open_loop(fleet, schedule, sleep=slow_sleep)
        assert report.served == report.offered
        assert report.p50_ms >= 50.0
