"""Fleet parity on a city-scale network (the ISSUE's ≥1000-segment gate).

A 16x17 grid city (1022 segments) is simulated once, and the same
observation stream is replayed into fleets sharded 1, 2 and 4 ways with
**graph-aware** shard starts from :func:`repro.network.partition_starts`.
``predict_many`` must be bitwise identical across the three layouts —
including segments inside the halo windows around every cut — or the
graph-aware partition changed serving results, which it must never do.
"""

from __future__ import annotations

import pytest

from repro import APOTS
from repro.core import save_model
from repro.data.graph_features import GraphFeatureConfig, GraphTrafficDataset
from repro.fleet import ForecastFleet
from repro.network import (
    graph_window_layout,
    grid_city,
    partition_starts,
    simulate_network,
)
from repro.traffic.types import SimulationConfig

from tests.fleet.conftest import replay_ticks

WARM_TICKS = 15
SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def city():
    graph = grid_city(16, 17, seed=0)
    assert len(graph) >= 1000  # the ISSUE's floor
    return graph


@pytest.fixture(scope="module")
def city_series(city):
    return simulate_network(city, SimulationConfig(num_days=1, seed=2018))


@pytest.fixture(scope="module")
def city_fleets(fleet_checkpoint, city, city_series):
    fleets = [
        ForecastFleet(
            fleet_checkpoint,
            len(city),
            shards=shards,
            shard_starts=partition_starts(city, shards),
        )
        for shards in SHARD_COUNTS
    ]
    for fleet in fleets:
        replay_ticks(fleet, city_series, range(WARM_TICKS))
    yield fleets
    for fleet in fleets:
        fleet.close()


def boundary_query(city, halo: int = 3) -> list[int]:
    """Segments straddling every graph-aware cut of every layout, plus a
    coarse sweep and duplicates — the worst case for halo handling."""
    n = len(city)
    segments: list[int] = []
    for shards in SHARD_COUNTS:
        for start in partition_starts(city, shards)[1:]:
            segments.extend(
                seg for seg in range(start - halo, start + halo + 1) if 0 <= seg < n
            )
    segments.extend(range(0, n, 97))  # coarse sweep incl. segment 0
    segments.append(n - 1)
    segments.append(segments[0])  # duplicate within one batch
    return segments


class TestCityScaleParity:
    def test_graph_aware_starts_differ_from_balanced(self, city):
        # The parity claim is only interesting if the partitions are
        # actually graph-aware (not silently the balanced default).
        n = len(city)
        assert any(
            partition_starts(city, k) != tuple((i * n) // k for i in range(k))
            for k in SHARD_COUNTS[1:]
        )

    def test_predict_many_bitwise_identical_across_layouts(self, city, city_fleets):
        single, two, four = city_fleets
        query = boundary_query(city)
        reference = single.predict_many(query)
        assert two.predict_many(query) == reference
        assert four.predict_many(query) == reference
        assert [f.segment_id for f in reference] == query
        # Interior segments answer from the model, not a degraded path.
        assert {f.source for f in reference} >= {"model"}

    def test_parity_survives_stream_advance(self, city, city_fleets, city_series):
        for fleet in city_fleets:
            replay_ticks(fleet, city_series, range(WARM_TICKS, WARM_TICKS + 2))
        single, two, four = city_fleets
        query = boundary_query(city)
        reference = single.predict_many(query, use_cache=False)
        assert two.predict_many(query, use_cache=False) == reference
        assert four.predict_many(query, use_cache=False) == reference

    def test_shard_map_ranges_tile_the_city(self, city, city_fleets):
        for fleet, shards in zip(city_fleets, SHARD_COUNTS):
            ranges = [fleet.shard_map.owned_range(k) for k in range(shards)]
            assert ranges[0][0] == 0 and ranges[-1][1] == len(city)
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo


# ---------------------------------------------------------------------------
# Graph-window fleets: the same parity gate with k-hop neighbourhood
# features, whose halo is *non-contiguous* — the covering shard set of a
# segment near a cut is computed from the layout, not from ±m arithmetic.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def graph_checkpoint(tmp_path_factory, city, city_series, micro_preset) -> str:
    """A zoo checkpoint whose features carry the city's k=2 graph layout."""
    config = GraphFeatureConfig(layout=graph_window_layout(city, 2))
    dataset = GraphTrafficDataset(city_series, config, seed=0)
    model = APOTS(predictor="F", adversarial=False, features=config,
                  preset=micro_preset, seed=0)
    model.fit(dataset)
    directory = tmp_path_factory.mktemp("graph-checkpoint")
    save_model(model, directory)
    return str(directory)


@pytest.fixture(scope="module")
def graph_fleets(graph_checkpoint, city, city_series):
    fleets = [
        ForecastFleet(
            graph_checkpoint,
            len(city),
            shards=shards,
            shard_starts=partition_starts(city, shards),
        )
        for shards in SHARD_COUNTS
    ]
    for fleet in fleets:
        replay_ticks(fleet, city_series, range(WARM_TICKS))
    yield fleets
    for fleet in fleets:
        fleet.close()


class TestGraphWindowParity:
    def test_checkpoint_round_trips_the_layout(self, graph_fleets, city):
        for fleet in graph_fleets:
            layout = fleet.features.layout
            assert layout.num_segments == len(city)
            assert layout.k == 2

    def test_predict_many_bitwise_identical_across_layouts(self, city, graph_fleets):
        single, two, four = graph_fleets
        query = boundary_query(city)
        reference = single.predict_many(query)
        assert two.predict_many(query) == reference
        assert four.predict_many(query) == reference
        assert [f.segment_id for f in reference] == query
        # A graph layout has no corridor-edge exclusion: with every
        # stream warm, *all* answers come from the model.
        assert {f.source for f in reference} == {"model"}

    def test_parity_survives_stream_advance(self, city, graph_fleets, city_series):
        for fleet in graph_fleets:
            replay_ticks(fleet, city_series, range(WARM_TICKS, WARM_TICKS + 2))
        single, two, four = graph_fleets
        query = boundary_query(city)
        reference = single.predict_many(query, use_cache=False)
        assert two.predict_many(query, use_cache=False) == reference
        assert four.predict_many(query, use_cache=False) == reference
