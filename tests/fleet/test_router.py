"""Tests for :class:`repro.fleet.ShardMap` (deterministic routing)."""

from __future__ import annotations

import pytest

from repro.fleet import ShardMap
from repro.serving import UnknownSegmentError


class TestShardMap:
    @pytest.mark.parametrize("num_segments,num_shards", [(9, 1), (9, 2), (9, 4), (100, 7), (5, 5)])
    def test_partition_is_contiguous_balanced_and_complete(self, num_segments, num_shards):
        shard_map = ShardMap(num_segments, num_shards)
        covered = []
        sizes = []
        previous_hi = 0
        for shard in range(num_shards):
            lo, hi = shard_map.owned_range(shard)
            assert lo == previous_hi, "ranges must tile the corridor contiguously"
            assert hi > lo, "every shard must own at least one segment"
            previous_hi = hi
            sizes.append(hi - lo)
            covered.extend(range(lo, hi))
        assert covered == list(range(num_segments))
        assert max(sizes) - min(sizes) <= 1, f"unbalanced shard sizes {sizes}"

    def test_shard_of_matches_owned_ranges(self):
        shard_map = ShardMap(17, 4)
        for shard in range(4):
            lo, hi = shard_map.owned_range(shard)
            for segment in range(lo, hi):
                assert shard_map.shard_of(segment) == shard

    def test_map_is_deterministic(self):
        a, b = ShardMap(23, 5), ShardMap(23, 5)
        assert [a.owned_range(s) for s in range(5)] == [b.owned_range(s) for s in range(5)]

    def test_halo_range_widens_and_clips(self):
        shard_map = ShardMap(9, 2)
        assert shard_map.owned_range(0) == (0, 4)
        assert shard_map.halo_range(0, 2) == (0, 6)
        assert shard_map.halo_range(1, 2) == (2, 9)
        assert shard_map.halo_range(0, 0) == (0, 4)

    def test_shards_for_observation_covers_exactly_the_halos(self):
        shard_map = ShardMap(9, 4)
        m = 2
        for segment in range(9):
            shards = shard_map.shards_for_observation(segment, m)
            assert shard_map.shard_of(segment) in shards
            for shard in range(4):
                lo, hi = shard_map.halo_range(shard, m)
                assert (shard in shards) == (lo <= segment < hi)

    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(9, 1)
        assert shard_map.owned_range(0) == (0, 9)
        assert all(shard_map.shard_of(s) == 0 for s in range(9))

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="shards"):
            ShardMap(4, 5)
        with pytest.raises(ValueError, match="positive"):
            ShardMap(4, 0)
        with pytest.raises(ValueError, match="positive"):
            ShardMap(0, 1)
        shard_map = ShardMap(9, 2)
        with pytest.raises(UnknownSegmentError, match="outside corridor"):
            shard_map.shard_of(9)
        with pytest.raises(UnknownSegmentError, match="outside corridor"):
            shard_map.shards_for_observation(-1, 2)
        with pytest.raises(ValueError, match="shard 2"):
            shard_map.owned_range(2)
        with pytest.raises(ValueError, match="non-negative"):
            shard_map.halo_range(0, -1)
