"""Mid-stream hot swap across a sharded fleet, under interleaved load.

The property pinned here is atomicity as observed by a client: every
``predict_many`` batch is answered by exactly one champion — never a
mix — and the swap itself is one schema-valid ``fleet_swap`` event.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import load_model, model_fingerprint, save_model
from repro.fleet import ForecastFleet
from repro.obs import RunRecorder, validate_run_dir

from tests.fleet.conftest import replay_ticks

WARM_TICKS = 15


@pytest.fixture(scope="module")
def challenger_checkpoint(fleet_checkpoint, tmp_path_factory) -> str:
    """A second checkpoint with visibly different weights."""
    model = load_model(fleet_checkpoint)
    rng = np.random.default_rng(17)
    state = model.predictor.state_dict()
    model.predictor.load_state_dict(
        {k: v + rng.normal(0.0, 0.05, size=v.shape) for k, v in state.items()}
    )
    directory = tmp_path_factory.mktemp("challenger")
    save_model(model, directory)
    return str(directory)


def batch_fingerprints(forecasts) -> set:
    """Distinct non-naive fingerprints inside one answered batch."""
    return {f.model_fingerprint for f in forecasts if f.source == "model"}


class TestShardedSwap:
    def test_swap_under_interleaved_load_never_mixes_champions(
        self, fleet_checkpoint, challenger_checkpoint, tiny_series, tmp_path
    ):
        recorder = RunRecorder(tmp_path / "run", manifest={})
        fleet = ForecastFleet(
            fleet_checkpoint, tiny_series.num_segments, shards=2, recorder=recorder
        )
        try:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS))
            query = list(range(tiny_series.num_segments))
            old = model_fingerprint(load_model(fleet_checkpoint))
            new = model_fingerprint(load_model(challenger_checkpoint))

            seen = []
            for step in range(WARM_TICKS, WARM_TICKS + 6):
                replay_ticks(fleet, tiny_series, [step])
                seen.append(batch_fingerprints(fleet.predict_many(query, use_cache=False)))
                if step == WARM_TICKS + 2:  # swap mid-stream, between batches
                    assert fleet.swap_checkpoint(challenger_checkpoint) == new

            # Every batch was answered by exactly one champion.
            assert all(len(prints) == 1 for prints in seen)
            assert [next(iter(p)) for p in seen] == [old] * 3 + [new] * 3
            # And the stream kept flowing: post-swap answers are live.
            assert all(
                not f.degraded
                for f in fleet.predict_many(query[2:-2], use_cache=False)
            )
        finally:
            fleet.close()
            recorder.close()

        assert validate_run_dir(tmp_path / "run") == []
        events = [
            json.loads(line)
            for line in (tmp_path / "run" / "events.jsonl").read_text().splitlines()
        ]
        (swap,) = [e for e in events if e["kind"] == "fleet_swap"]
        assert swap["shards_swapped"] == 2
        assert swap["fingerprint"] == new

    def test_swap_invalidates_cache_across_shards(
        self, fleet_checkpoint, challenger_checkpoint, tiny_series
    ):
        fleet = ForecastFleet(fleet_checkpoint, tiny_series.num_segments, shards=2)
        try:
            replay_ticks(fleet, tiny_series, range(WARM_TICKS))
            query = list(range(2, tiny_series.num_segments - 2))
            fleet.predict_many(query)
            warmed = fleet.predict_many(query)
            assert all(f.from_cache for f in warmed)
            fleet.swap_checkpoint(challenger_checkpoint)
            fresh = fleet.predict_many(query)
            assert not any(f.from_cache for f in fresh)
            assert all(
                f.model_fingerprint != warmed[i].model_fingerprint
                for i, f in enumerate(fresh)
                if f.source == "model"
            )
        finally:
            fleet.close()

    def test_swap_matches_single_shard_semantics(
        self, fleet_checkpoint, challenger_checkpoint, tiny_series
    ):
        """shards=1 short-circuits in-process; results must agree."""
        local = ForecastFleet(fleet_checkpoint, tiny_series.num_segments, shards=1)
        sharded = ForecastFleet(fleet_checkpoint, tiny_series.num_segments, shards=2)
        try:
            for fleet in (local, sharded):
                replay_ticks(fleet, tiny_series, range(WARM_TICKS))
                fleet.swap_checkpoint(challenger_checkpoint)
            query = list(range(tiny_series.num_segments))
            assert local.predict_many(query) == sharded.predict_many(query)
        finally:
            local.close()
            sharded.close()
