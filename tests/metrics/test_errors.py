"""Tests for MAE / RMSE / MAPE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import all_errors, mae, mape, rmse


class TestValues:
    def test_mae(self):
        assert mae(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)

    def test_rmse(self):
        assert rmse(np.array([3.0, 0.0]), np.array([0.0, 0.0])) == pytest.approx(np.sqrt(4.5))

    def test_mape_percent(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(10.0)

    def test_perfect_prediction(self):
        truth = np.array([50.0, 80.0])
        assert mae(truth, truth) == 0.0
        assert rmse(truth, truth) == 0.0
        assert mape(truth, truth) == 0.0

    def test_all_errors_keys(self):
        report = all_errors(np.array([1.0]), np.array([2.0]))
        assert set(report) == {"mae", "rmse", "mape"}

    def test_mape_guards_zero_truth(self):
        value = mape(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(value)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            mae(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError, match="zero samples"):
            rmse(np.array([]), np.array([]))


finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=64)
positive = st.floats(min_value=1.0, max_value=1e4, allow_nan=False, width=64)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 20), elements=finite), arrays(np.float64, st.integers(1, 20), elements=finite))
def test_mae_le_rmse(a, b):
    if a.shape != b.shape:
        return
    assert mae(a, b) <= rmse(a, b) + 1e-9


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 20), elements=finite))
def test_metrics_nonnegative(a):
    b = a[::-1].copy()
    assert mae(a, b) >= 0.0
    assert rmse(a, b) >= 0.0


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 20), elements=positive))
def test_mape_symmetry_in_shift(truth):
    """Overshooting by d and undershooting by d give the same MAPE."""
    over = mape(truth + 1.0, truth)
    under = mape(truth - 1.0, truth)
    assert over == pytest.approx(under, rel=1e-9)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(2, 20), elements=finite))
def test_mae_triangle_inequality(a):
    b = np.zeros_like(a)
    c = a / 2.0
    assert mae(a, b) <= mae(a, c) + mae(c, b) + 1e-9
