"""Tests for abrupt-change regime classification (Eq 7/8)."""

import numpy as np
import pytest

from repro.metrics import ABRUPT_THETA, classify_regimes


class TestClassification:
    def test_paper_threshold(self):
        assert ABRUPT_THETA == 0.3

    def test_deceleration_detected(self):
        # 100 -> 60 is a 40 % drop: abrupt deceleration.
        masks = classify_regimes(np.array([100.0]), np.array([60.0]))
        assert masks.abrupt_deceleration[0]
        assert not masks.abrupt_acceleration[0]
        assert not masks.normal[0]

    def test_acceleration_detected(self):
        # 50 -> 80 is a 60 % rise: abrupt acceleration.
        masks = classify_regimes(np.array([50.0]), np.array([80.0]))
        assert masks.abrupt_acceleration[0]
        assert not masks.abrupt_deceleration[0]

    def test_normal_change(self):
        masks = classify_regimes(np.array([100.0]), np.array([95.0]))
        assert masks.normal[0]

    def test_exact_threshold_is_abrupt(self):
        # Eq 7 uses >=, so exactly 30 % counts.
        masks = classify_regimes(np.array([100.0]), np.array([70.0]))
        assert masks.abrupt_deceleration[0]

    def test_just_below_threshold_is_normal(self):
        masks = classify_regimes(np.array([100.0]), np.array([70.5]))
        assert masks.normal[0]

    def test_whole_covers_everything(self):
        masks = classify_regimes(np.array([100.0, 50.0, 90.0]), np.array([60.0, 80.0, 91.0]))
        assert masks.whole.all()
        assert masks.counts()["whole"] == 3

    def test_partition_is_exact(self):
        rng = np.random.default_rng(0)
        last = rng.uniform(20, 100, size=500)
        target = rng.uniform(20, 100, size=500)
        masks = classify_regimes(last, target)
        combined = (
            masks.normal.astype(int)
            + masks.abrupt_acceleration.astype(int)
            + masks.abrupt_deceleration.astype(int)
        )
        np.testing.assert_array_equal(combined, 1)

    def test_counts(self):
        masks = classify_regimes(np.array([100.0, 100.0]), np.array([50.0, 99.0]))
        counts = masks.counts()
        assert counts == {"whole": 2, "normal": 1, "abrupt_acc": 0, "abrupt_dec": 1}

    def test_as_dict_keys(self):
        masks = classify_regimes(np.array([100.0]), np.array([99.0]))
        assert set(masks.as_dict()) == {"whole", "normal", "abrupt_acc", "abrupt_dec"}

    def test_custom_theta(self):
        masks = classify_regimes(np.array([100.0]), np.array([85.0]), theta=0.1)
        assert masks.abrupt_deceleration[0]

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            classify_regimes(np.zeros(3), np.zeros(4))

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            classify_regimes(np.array([1.0]), np.array([1.0]), theta=0.0)
