"""Tests for gain (Eq 9) and the paired t-test."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.metrics import gain, paired_t_test


class TestGain:
    def test_improvement_is_positive(self):
        # Error dropping 20 -> 15 is a 25 % gain, as the paper reports it.
        assert gain(15.0, 20.0) == pytest.approx(25.0)

    def test_regression_is_negative(self):
        assert gain(25.0, 20.0) == pytest.approx(-25.0)

    def test_no_change(self):
        assert gain(10.0, 10.0) == 0.0

    def test_paper_table2_example(self):
        # Table II: ST = 13.26 vs S = 16.60 -> 20.12 % gain.
        assert gain(13.26, 16.60) == pytest.approx(20.12, abs=0.01)

    def test_zero_before_rejected(self):
        with pytest.raises(ValueError):
            gain(1.0, 0.0)


class TestPairedTTest:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10, 2, size=8)
        b = a + rng.normal(1, 0.5, size=8)
        result = paired_t_test(a, b)
        reference = scipy_stats.ttest_rel(a, b)
        assert result.statistic == pytest.approx(float(reference.statistic))
        assert result.p_value == pytest.approx(float(reference.pvalue))
        assert result.degrees_of_freedom == 7

    def test_significant_improvement(self):
        a = np.array([10.0, 11.0, 9.0, 10.5, 10.2, 9.8, 10.1, 9.9])
        b = a + np.array([2.0, 2.1, 1.9, 2.2, 1.8, 2.0, 2.1, 1.9])
        result = paired_t_test(a, b)
        assert result.significant
        assert result.statistic < 0  # a consistently smaller

    def test_insignificant_noise(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=8)
        b = a + rng.normal(0, 5, size=8)
        result = paired_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0

    def test_str_format(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([2.5, 3.0, 4.2])
        text = str(paired_t_test(a, b))
        assert text.startswith("t(2)=")
        assert "p=" in text

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test(np.zeros(3), np.zeros(4))

    def test_too_few_pairs(self):
        with pytest.raises(ValueError):
            paired_t_test(np.array([1.0]), np.array([2.0]))
