"""Shared fixtures for the continual-learning (mlops) tests.

One micro champion is trained and checkpointed per session; drift and
controller tests rebuild services from it, mirroring production.
"""

from __future__ import annotations

import pytest

from repro import APOTS
from repro.core import save_model
from repro.serving import Observation


def observation_at(series, segment_id: int, step: int, column: int | None = None) -> Observation:
    """The Observation a live feed would emit for one series cell.

    ``column`` lets tests stream one series' data under another stream's
    step numbering (e.g. appending a shifted series to a base stream).
    """
    column = column if column is not None else step
    return Observation(
        segment_id=segment_id,
        step=step,
        speed_kmh=float(series.speeds[segment_id, column]),
        event=float(series.events[segment_id, column]),
        temperature=float(series.temperature[column]),
        precipitation=float(series.precipitation[column]),
        day_type=tuple(series.day_types[column]),
    )


def tick_of(series, step: int, column: int | None = None) -> list[Observation]:
    """One full-corridor tick of observations."""
    return [
        observation_at(series, segment, step, column)
        for segment in range(series.num_segments)
    ]


@pytest.fixture(scope="session")
def champion_checkpoint(tmp_path_factory, tiny_dataset, micro_preset) -> str:
    """A fitted plain-F champion saved as a format-v3 zoo checkpoint."""
    model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
    model.fit(tiny_dataset)
    directory = tmp_path_factory.mktemp("champion")
    save_model(model, directory)
    return str(directory)
