"""ContinualController: plumbing, deploy/guard/rollback, pipeline paths."""

from __future__ import annotations

import json

import numpy as np

from repro.core import load_model, model_fingerprint, save_model
from repro.mlops import ContinualController, ControllerConfig, DriftConfig, RetrainSpec
from repro.mlops.drift import DriftDecision
from repro.obs import RunRecorder, validate_run_dir
from repro.serving import ForecastService

from .conftest import tick_of


def make_controller(checkpoint, series, workdir, recorder=None, **overrides):
    service = ForecastService.from_checkpoint(checkpoint, series.num_segments)
    # Thresholds are cranked far above anything the micro champion's
    # diurnal error swing can reach: pipeline tests drive _run_pipeline
    # explicitly, so organic triggers would only add noise here (the
    # monitors' own trigger behaviour lives in test_drift.py).
    defaults = dict(
        drift=DriftConfig(
            error_window=32,
            min_samples=16,
            check_every=8,
            hysteresis=2,
            error_ratio=20.0,
            psi_threshold=5.0,
            mean_shift_kmh=60.0,
        ),
        retrain=RetrainSpec(epochs=1, batch_size=16, max_steps_per_epoch=4, min_windows=48),
        history_capacity=512,
        min_history_steps=64,
        cooldown_ticks=8,
        postswap_ticks=10,
        rollback_window=32,
        rollback_min_samples=8,
        rollback_patience=1,
        seed=0,
    )
    defaults.update(overrides)
    controller = ContinualController(
        service,
        checkpoint,
        workdir,
        config=ControllerConfig(**defaults),
        recorder=recorder,
    )
    return controller


def stream(controller, series, steps, predict=True):
    segments = list(range(series.num_segments))
    for step in steps:
        controller.ingest_tick(tick_of(series, step))
        if predict:
            controller.predict(segments)


def sabotage_checkpoint(checkpoint, directory, scale=5.0):
    model = load_model(checkpoint)
    rng = np.random.default_rng(0)
    state = model.predictor.state_dict()
    model.predictor.load_state_dict(
        {k: v + rng.normal(0.0, scale, size=v.shape) for k, v in state.items()}
    )
    save_model(model, directory)
    return directory


class TestPlumbing:
    def test_fingerprint_matches_checkpoint(self, champion_checkpoint, tiny_series, tmp_path):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path)
        assert controller.fingerprint == model_fingerprint(load_model(champion_checkpoint))

    def test_predictions_reconcile_into_error_samples(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path)
        stream(controller, tiny_series, range(40))
        # Model forecasts only start once the store holds a full window,
        # and each tick's batch reconciles the previous tick's forecasts.
        assert controller.error_monitor.rolling_mae() is not None
        assert len(controller.history) == 40

    def test_naive_forecasts_are_not_monitored(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path)
        # Too few ticks for a full model window: everything is degraded.
        stream(controller, tiny_series, range(5))
        assert len(controller.reconciler) == 0
        assert controller.error_monitor.rolling_mae() is None


class TestDeploy:
    def test_deploy_swaps_fingerprint_and_clears_pending(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path)
        stream(controller, tiny_series, range(30))
        assert len(controller.reconciler) > 0
        other = sabotage_checkpoint(champion_checkpoint, tmp_path / "other", scale=0.01)
        fingerprint = controller.deploy(other)
        assert fingerprint != model_fingerprint(load_model(champion_checkpoint))
        assert controller.fingerprint == fingerprint
        assert controller.target.fingerprint == fingerprint
        assert len(controller.reconciler) == 0  # outgoing model's forecasts dropped
        assert controller.in_guardband

    def test_clean_guard_window_accepts(self, champion_checkpoint, tiny_series, tmp_path):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path)
        stream(controller, tiny_series, range(30))
        # A near-identical model: guard must pass and accept it.
        twin = sabotage_checkpoint(champion_checkpoint, tmp_path / "twin", scale=1e-6)
        controller.deploy(twin)
        stream(controller, tiny_series, range(30, 30 + controller.config.postswap_ticks + 1))
        assert not controller.in_guardband
        assert controller.rollback_count == 0
        assert controller.fingerprint == model_fingerprint(load_model(twin))

    def test_bad_challenger_is_rolled_back(self, champion_checkpoint, tiny_series, tmp_path):
        run_dir = tmp_path / "run"
        recorder = RunRecorder(run_dir, manifest={})
        controller = make_controller(
            champion_checkpoint, tiny_series, tmp_path, recorder=recorder
        )
        stream(controller, tiny_series, range(30))
        original = controller.fingerprint
        bad = sabotage_checkpoint(champion_checkpoint, tmp_path / "bad", scale=5.0)
        controller.deploy(bad)
        stream(controller, tiny_series, range(30, 30 + controller.config.postswap_ticks))
        recorder.close()

        assert controller.rollback_count == 1
        assert controller.fingerprint == original
        assert controller.target.fingerprint == original
        assert not controller.in_guardband

        assert validate_run_dir(run_dir) == []
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        (rollback,) = [e for e in events if e["kind"] == "mlops_rollback"]
        (swap,) = [e for e in events if e["kind"] == "mlops_swap"]
        assert rollback["fingerprint"] == swap["fingerprint"]
        assert rollback["restored_fingerprint"] == original
        assert rollback["rolling_mae"] > rollback["guard_mae"]

    def test_rollback_restores_live_predictions(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        """After a rollback the service must answer like the original."""
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path)
        stream(controller, tiny_series, range(30))
        original = controller.fingerprint
        bad = sabotage_checkpoint(champion_checkpoint, tmp_path / "bad", scale=5.0)
        controller.deploy(bad)
        stream(controller, tiny_series, range(30, 30 + controller.config.postswap_ticks))
        assert controller.rollback_count == 1
        forecasts = controller.predict(
            list(range(tiny_series.num_segments)), use_cache=False
        )
        # The gate may hold a couple of segments in naive quarantine;
        # every model-sourced answer must be stamped with the restored
        # champion, not the rolled-back challenger.
        modelled = [f for f in forecasts if f.source == "model"]
        assert modelled
        assert all(f.model_fingerprint == original for f in modelled)
        assert all(np.isfinite(f.speed_kmh) for f in forecasts)


class TestPipeline:
    def trigger(self, step=400):
        return DriftDecision(monitor="error", reason="test trigger", step=step, stats={})

    def test_rejected_challenger_keeps_champion(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        run_dir = tmp_path / "run"
        recorder = RunRecorder(run_dir, manifest={})
        controller = make_controller(
            champion_checkpoint, tiny_series, tmp_path / "work", recorder=recorder
        )
        stream(controller, tiny_series, range(120))
        original = controller.fingerprint
        # The stream matches the training distribution, so the fine-tuned
        # challenger cannot beat the champion by the pinned 2 %.
        controller._run_pipeline(self.trigger())
        recorder.close()

        assert controller.trigger_count == 1
        assert controller.swap_count == 0
        assert controller.fingerprint == original
        assert controller._cooldown > 0  # backing off, not retrying every tick
        kinds = [
            json.loads(line)["kind"]
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        assert "mlops_trigger" in kinds
        assert "mlops_retrain_start" in kinds and "mlops_retrain_end" in kinds
        assert "mlops_shadow" in kinds
        assert "mlops_swap" not in kinds
        assert validate_run_dir(run_dir) == []

    def test_insufficient_history_backs_off(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path / "work")
        stream(controller, tiny_series, range(20))  # far below min_windows
        controller._run_pipeline(self.trigger(step=20))
        assert controller.swap_count == 0
        assert controller._cooldown > 0

    def test_retrain_seed_derives_from_trigger_count(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        from repro.parallel import derive_task_seed

        run_dir = tmp_path / "run"
        recorder = RunRecorder(run_dir, manifest={})
        controller = make_controller(
            champion_checkpoint, tiny_series, tmp_path / "work", recorder=recorder, seed=77
        )
        stream(controller, tiny_series, range(120))
        controller._run_pipeline(self.trigger())
        controller._cooldown = 0
        controller._run_pipeline(self.trigger(step=500))
        recorder.close()
        triggers = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
            if json.loads(line)["kind"] == "mlops_trigger"
        ]
        assert [t["seed"] for t in triggers] == [
            derive_task_seed(77, 0),
            derive_task_seed(77, 1),
        ]


class TestCooldown:
    def test_cooldown_suppresses_immediate_retrigger(
        self, champion_checkpoint, tiny_series, tmp_path, monkeypatch
    ):
        controller = make_controller(champion_checkpoint, tiny_series, tmp_path / "work")
        stream(controller, tiny_series, range(80))
        calls = []
        monkeypatch.setattr(
            controller, "_run_pipeline", lambda decision: calls.append(decision)
        )
        controller._cooldown = 5
        decision = DriftDecision(monitor="error", reason="x", step=80, stats={})
        monkeypatch.setattr(
            controller.error_monitor, "observe", lambda samples: decision
        )
        stream(controller, tiny_series, range(80, 84))
        assert calls == []  # cooldown swallowed the triggers
        stream(controller, tiny_series, range(84, 87))
        assert len(calls) >= 1  # cooldown expired, trigger honoured
