"""Drift monitors: reconciliation, baselines, hysteresis, PSI triggers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ReferenceProfile
from repro.mlops import (
    DriftConfig,
    ErrorDriftMonitor,
    ErrorSample,
    InputDriftMonitor,
    TruthReconciler,
)
from repro.serving import Observation


def obs(segment: int, step: int, speed: float) -> Observation:
    return Observation(segment_id=segment, step=step, speed_kmh=speed, event=0.0)


def samples_with_error(count: int, error: float, start_step: int = 0) -> list[ErrorSample]:
    return [
        ErrorSample(
            segment_id=0,
            target_step=start_step + i,
            predicted_kmh=80.0 + error,
            truth_kmh=80.0,
            last_input_kmh=80.0,
        )
        for i in range(count)
    ]


CONFIG = DriftConfig(
    error_window=16, min_samples=8, error_ratio=1.5, check_every=4, hysteresis=2
)


class TestTruthReconciler:
    def test_matches_forecast_to_later_truth(self):
        rec = TruthReconciler()
        rec.record(2, 10, predicted_kmh=70.0, last_input_kmh=75.0)
        assert rec.reconcile([obs(2, 9, 80.0)]) == []  # wrong step
        (sample,) = rec.reconcile([obs(2, 10, 65.0)])
        assert sample.predicted_kmh == 70.0
        assert sample.truth_kmh == 65.0
        assert sample.abs_error == pytest.approx(5.0)
        assert len(rec) == 0  # resolved entries leave the pending set

    def test_regime_labels_follow_the_paper_threshold(self):
        drop = ErrorSample(0, 0, 50.0, 40.0, last_input_kmh=80.0)  # -50 %
        rise = ErrorSample(0, 0, 90.0, 110.0, last_input_kmh=80.0)  # +37 %
        flat = ErrorSample(0, 0, 79.0, 81.0, last_input_kmh=80.0)
        assert drop.regime == "abrupt_dec"
        assert rise.regime == "abrupt_acc"
        assert flat.regime == "normal"

    def test_pending_is_bounded(self):
        rec = TruthReconciler(max_pending=10)
        for step in range(25):
            rec.record(0, step, 70.0, 70.0)
        assert len(rec) == 10
        assert rec.dropped == 15
        assert rec.reconcile([obs(0, 0, 70.0)]) == []  # oldest were evicted

    def test_clear_drops_everything(self):
        rec = TruthReconciler()
        rec.record(0, 5, 70.0, 70.0)
        rec.clear()
        assert rec.reconcile([obs(0, 5, 60.0)]) == []


class TestErrorDriftMonitor:
    def test_baseline_freezes_at_first_full_window(self):
        monitor = ErrorDriftMonitor(CONFIG)
        monitor.observe(samples_with_error(15, 2.0))
        assert monitor.baseline_mae is None
        monitor.observe(samples_with_error(1, 2.0, start_step=15))
        assert monitor.baseline_mae == pytest.approx(2.0)
        # Later, larger errors must not move the frozen baseline.
        monitor.observe(samples_with_error(16, 8.0, start_step=16))
        assert monitor.baseline_mae == pytest.approx(2.0)

    def test_stable_errors_never_trigger(self):
        monitor = ErrorDriftMonitor(CONFIG)
        decision = monitor.observe(samples_with_error(200, 2.0))
        assert decision is None

    def test_degraded_errors_trigger_after_hysteresis(self):
        monitor = ErrorDriftMonitor(CONFIG)
        monitor.observe(samples_with_error(16, 2.0))  # calibrate at 2 km/h
        decision = monitor.observe(samples_with_error(40, 9.0, start_step=16))
        assert decision is not None
        assert decision.monitor == "error"
        assert decision.stats["ratio"] > CONFIG.error_ratio

    def test_single_breach_is_absorbed(self):
        monitor = ErrorDriftMonitor(CONFIG)
        monitor.observe(samples_with_error(16, 2.0))  # baseline 2.0
        # A short error burst breaches exactly one evaluation before the
        # window mean falls back under threshold: the hysteresis gate
        # (2 consecutive breaches) must not fire.
        assert monitor.observe(samples_with_error(4, 7.0, start_step=16)) is None
        assert monitor.observe(samples_with_error(12, 0.0, start_step=20)) is None
        assert monitor.observe(samples_with_error(60, 2.0, start_step=32)) is None

    def test_reset_recalibrates_baseline(self):
        monitor = ErrorDriftMonitor(CONFIG)
        monitor.observe(samples_with_error(16, 2.0))
        monitor.reset()
        assert monitor.baseline_mae is None
        monitor.observe(samples_with_error(16, 6.0))
        assert monitor.baseline_mae == pytest.approx(6.0)

    def test_calm_keeps_baseline_but_clears_breaches(self):
        monitor = ErrorDriftMonitor(CONFIG)
        monitor.observe(samples_with_error(16, 2.0))
        monitor.observe(samples_with_error(4, 9.0, start_step=16))  # one breach
        monitor.calm()
        assert monitor.baseline_mae == pytest.approx(2.0)
        # The next trigger needs a full fresh hysteresis run.
        assert monitor.observe(samples_with_error(4, 9.0, start_step=20)) is None
        assert monitor.observe(samples_with_error(4, 9.0, start_step=24)) is not None

    def test_emits_schema_valid_events(self, tmp_path):
        from repro.obs import RunRecorder, validate_run_dir

        recorder = RunRecorder(tmp_path, manifest={})
        monitor = ErrorDriftMonitor(CONFIG, recorder)
        monitor.observe(samples_with_error(60, 2.0))
        recorder.close()
        assert validate_run_dir(tmp_path) == []


class TestInputDriftMonitor:
    # PSI over a 13-bin histogram needs a few hundred samples before its
    # sampling noise drops safely under the 0.25 threshold — production
    # configs use day-sized windows for the same reason.
    CONFIG = DriftConfig(input_window=512, check_every=64, hysteresis=2, mean_shift_kmh=10.0)

    def _profile(self, rng):
        return ReferenceProfile.from_speeds(rng.normal(85.0, 8.0, size=4000))

    def _stream(self, speeds, start_step=0):
        return [obs(0, start_step + i, float(s)) for i, s in enumerate(speeds)]

    def test_disabled_without_profile(self):
        monitor = InputDriftMonitor(None, self.CONFIG)
        assert not monitor.enabled
        assert monitor.observe(self._stream([30.0] * 500)) is None

    def test_in_distribution_never_triggers(self, rng):
        monitor = InputDriftMonitor(self._profile(rng), self.CONFIG)
        speeds = rng.normal(85.0, 8.0, size=2000)
        assert monitor.observe(self._stream(speeds)) is None

    def test_congestion_shift_triggers(self, rng):
        monitor = InputDriftMonitor(self._profile(rng), self.CONFIG)
        monitor.observe(self._stream(rng.normal(85.0, 8.0, size=512)))
        decision = monitor.observe(self._stream(rng.normal(35.0, 8.0, size=800), start_step=512))
        assert decision is not None
        assert decision.monitor == "input"
        assert decision.stats["psi"] > self.CONFIG.psi_threshold

    def test_emits_schema_valid_events(self, rng, tmp_path):
        from repro.obs import RunRecorder, validate_run_dir

        recorder = RunRecorder(tmp_path, manifest={})
        monitor = InputDriftMonitor(self._profile(rng), self.CONFIG, recorder)
        monitor.observe(self._stream(rng.normal(40.0, 8.0, size=200)))
        recorder.close()
        assert validate_run_dir(tmp_path) == []


class TestConditionedInputDrift:
    """Day-type-conditioned PSI: the mechanism behind psi_threshold=0.25."""

    CONFIG = DriftConfig(input_window=512, check_every=64, hysteresis=2, mean_shift_kmh=10.0)

    WEEKDAY = (1.0, 0.0, 0.0, 0.0)
    OFFDAY = (0.0, 1.0, 0.0, 0.0)

    def _labelled(self, speeds, day_type, start_step=0):
        return [
            Observation(
                segment_id=0, step=start_step + i, speed_kmh=float(s), day_type=day_type
            )
            for i, s in enumerate(speeds)
        ]

    def _profile(self, rng):
        """Training profile: slow commute weekdays, fast offdays."""
        import dataclasses

        weekday = rng.normal(55.0, 8.0, size=4000)
        offday = rng.normal(90.0, 8.0, size=4000)
        pooled = ReferenceProfile.from_speeds(np.concatenate([weekday, offday]))
        return dataclasses.replace(
            pooled,
            day_bins=(
                ("weekday", ReferenceProfile.from_speeds(weekday)),
                ("offday", ReferenceProfile.from_speeds(offday)),
            ),
        )

    def test_weekend_window_is_not_drift(self, rng):
        """An all-offday window at offday speeds: a pooled monitor calls
        this drift (weekly-seasonality false positive); the conditioned
        monitor scores it against the offday bin and stays quiet."""
        import dataclasses

        profile = self._profile(rng)
        offday_speeds = rng.normal(90.0, 8.0, size=1500)

        pooled_monitor = InputDriftMonitor(
            dataclasses.replace(profile, day_bins=()), self.CONFIG
        )
        assert pooled_monitor.observe(self._labelled(offday_speeds, self.OFFDAY)) is not None

        conditioned_monitor = InputDriftMonitor(profile, self.CONFIG)
        assert conditioned_monitor.observe(self._labelled(offday_speeds, self.OFFDAY)) is None

    def test_real_shift_still_triggers_conditioned(self, rng):
        monitor = InputDriftMonitor(self._profile(rng), self.CONFIG)
        monitor.observe(self._labelled(rng.normal(90.0, 8.0, size=512), self.OFFDAY))
        congested = rng.normal(35.0, 8.0, size=800)
        decision = monitor.observe(
            self._labelled(congested, self.OFFDAY, start_step=512)
        )
        assert decision is not None
        assert decision.stats["conditioned"] is True
        assert decision.reason.startswith("conditioned")
        assert decision.stats["psi"] > self.CONFIG.psi_threshold

    def test_unlabelled_stream_falls_back_to_pooled(self, rng):
        monitor = InputDriftMonitor(self._profile(rng), self.CONFIG)
        congested = [obs(0, i, s) for i, s in enumerate(rng.normal(20.0, 5.0, size=1500))]
        decision = monitor.observe(congested)
        assert decision is not None
        assert decision.stats["conditioned"] is False

    def test_small_subgroups_fall_back_to_pooled(self, rng):
        """A window with too few samples of each day type cannot be
        conditioned; the pooled statistic still guards it."""
        config = DriftConfig(input_window=32, check_every=32, hysteresis=1)
        monitor = InputDriftMonitor(self._profile(rng), config)
        mixed = []
        for i in range(32):
            day = self.WEEKDAY if i % 2 == 0 else self.OFFDAY
            mixed.extend(self._labelled([20.0 + rng.uniform(0, 2)], day, start_step=i))
        decision = monitor.observe(mixed)
        assert decision is not None
        assert decision.stats["conditioned"] is False

    def test_conditioned_flag_reaches_the_event_log(self, rng, tmp_path):
        from repro.obs import RunRecorder, validate_run_dir

        recorder = RunRecorder(tmp_path, manifest={})
        monitor = InputDriftMonitor(self._profile(rng), self.CONFIG, recorder)
        monitor.observe(self._labelled(rng.normal(90.0, 8.0, size=600), self.OFFDAY))
        recorder.close()
        assert validate_run_dir(tmp_path) == []
        import json

        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert events and all(e["conditioned"] is True for e in events)


class TestDriftConfigValidation:
    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            DriftConfig(error_window=1)
        with pytest.raises(ValueError):
            DriftConfig(min_samples=0)
        with pytest.raises(ValueError):
            DriftConfig(min_samples=100, error_window=64)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            DriftConfig(error_ratio=0.9)
        with pytest.raises(ValueError):
            DriftConfig(hysteresis=0)
