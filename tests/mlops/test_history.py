"""HistoryBuffer: tick ingestion, ring semantics, snapshot fidelity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import FeatureConfig, TrafficDataset
from repro.mlops import HistoryBuffer

from .conftest import tick_of


def replay(buffer, series, steps, offset: int = 0) -> None:
    for step in steps:
        buffer.ingest_tick(tick_of(series, step + offset, column=step))


class TestIngest:
    def test_counts_contiguous_ticks(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=64)
        replay(buffer, tiny_series, range(10))
        assert len(buffer) == 10
        assert buffer.latest_step == 9

    def test_rejects_mixed_steps(self, tiny_series):
        import dataclasses

        buffer = HistoryBuffer(tiny_series.num_segments)
        batch = tick_of(tiny_series, 0)
        batch[-1] = dataclasses.replace(batch[-1], step=1)
        with pytest.raises(ValueError, match="mixed steps"):
            buffer.ingest_tick(batch)

    def test_rejects_partial_corridor(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments)
        with pytest.raises(ValueError, match="full corridor"):
            buffer.ingest_tick(tick_of(tiny_series, 0)[:-1])

    def test_gap_restarts_the_run(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=64)
        replay(buffer, tiny_series, range(10))
        buffer.ingest_tick(tick_of(tiny_series, 20))
        assert len(buffer) == 1
        assert buffer.latest_step == 20

    def test_capacity_bounds_the_run(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=8)
        replay(buffer, tiny_series, range(20))
        assert len(buffer) == 8
        assert buffer.latest_step == 19

    def test_last_speed_tracks_latest_tick(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=8)
        replay(buffer, tiny_series, range(5))
        assert buffer.last_speed_kmh(3) == pytest.approx(float(tiny_series.speeds[3, 4]))


class TestSnapshot:
    def test_snapshot_matches_source_series(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=128)
        replay(buffer, tiny_series, range(100))
        snap = buffer.snapshot()
        np.testing.assert_allclose(snap.speeds, tiny_series.speeds[:, :100])
        np.testing.assert_allclose(snap.events, tiny_series.events[:, :100])
        np.testing.assert_allclose(snap.temperature, tiny_series.temperature[:100])
        np.testing.assert_allclose(snap.day_types, tiny_series.day_types[:100])

    def test_snapshot_tail_only(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=128)
        replay(buffer, tiny_series, range(100))
        snap = buffer.snapshot(steps=30)
        assert snap.num_steps == 30
        np.testing.assert_allclose(snap.speeds, tiny_series.speeds[:, 70:100])

    def test_snapshot_is_deterministic(self, tiny_series):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=64)
        replay(buffer, tiny_series, range(50))
        first = buffer.snapshot()
        second = buffer.snapshot()
        np.testing.assert_array_equal(first.speeds, second.speeds)
        assert first.timestamps == second.timestamps

    def test_snapshot_feeds_the_feature_pipeline(self, tiny_series):
        """The whole point: a snapshot must be trainable on directly."""
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=128)
        replay(buffer, tiny_series, range(120))
        snap = buffer.snapshot()
        dataset = TrafficDataset(snap, FeatureConfig(beta=1), seed=3)
        assert dataset.features.num_windows == 120 - 12 - 1 + 1

    def test_empty_buffer_refuses_snapshot(self, tiny_series):
        with pytest.raises(ValueError, match="empty"):
            HistoryBuffer(tiny_series.num_segments).snapshot()
