"""Reference profiles: construction, PSI behaviour, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ReferenceProfile, SPEED_BIN_EDGES


class TestConstruction:
    def test_from_speeds_records_moments(self, rng):
        speeds = rng.normal(80.0, 10.0, size=5000)
        profile = ReferenceProfile.from_speeds(speeds)
        assert profile.mean_kmh == pytest.approx(speeds.mean())
        assert profile.std_kmh == pytest.approx(speeds.std())
        assert profile.count == 5000
        assert np.asarray(profile.proportions).sum() == pytest.approx(1.0)

    def test_from_series_covers_all_segments(self, tiny_series):
        profile = ReferenceProfile.from_series(tiny_series)
        assert profile.count == tiny_series.speeds.size

    def test_bin_edges_span_plausible_speeds(self):
        edges = np.asarray(SPEED_BIN_EDGES)
        assert edges[0] == 0.0 and edges[-1] == 130.0
        assert np.all(np.diff(edges) > 0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ReferenceProfile.from_speeds(np.array([]))


class TestPsi:
    def test_identical_distribution_is_near_zero(self, rng):
        speeds = rng.normal(75.0, 12.0, size=8000)
        profile = ReferenceProfile.from_speeds(speeds[:4000])
        assert profile.psi(speeds[4000:]) < 0.05

    def test_shifted_distribution_is_large(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(90.0, 8.0, size=4000))
        congested = rng.normal(35.0, 8.0, size=4000)
        assert profile.psi(congested) > 0.25

    def test_psi_monotone_in_shift(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(80.0, 10.0, size=4000))
        psis = [
            profile.psi(rng.normal(80.0 - delta, 10.0, size=2000))
            for delta in (0.0, 15.0, 30.0)
        ]
        assert psis[0] < psis[1] < psis[2]

    def test_out_of_range_speeds_are_clipped_not_dropped(self):
        profile = ReferenceProfile.from_speeds(np.full(100, 60.0))
        # 200 km/h lands in the top bin rather than vanishing.
        assert np.isfinite(profile.psi(np.full(50, 200.0)))


class TestPersistence:
    def test_state_roundtrip(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(70.0, 9.0, size=1000))
        clone = ReferenceProfile.from_state(profile.state_dict())
        assert clone == profile

    def test_state_dict_is_json_safe(self, rng):
        import json

        profile = ReferenceProfile.from_speeds(rng.normal(70.0, 9.0, size=100))
        json.dumps(profile.state_dict())  # must not raise
