"""Reference profiles: construction, PSI behaviour, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ReferenceProfile, SPEED_BIN_EDGES


class TestConstruction:
    def test_from_speeds_records_moments(self, rng):
        speeds = rng.normal(80.0, 10.0, size=5000)
        profile = ReferenceProfile.from_speeds(speeds)
        assert profile.mean_kmh == pytest.approx(speeds.mean())
        assert profile.std_kmh == pytest.approx(speeds.std())
        assert profile.count == 5000
        assert np.asarray(profile.proportions).sum() == pytest.approx(1.0)

    def test_from_series_covers_all_segments(self, tiny_series):
        profile = ReferenceProfile.from_series(tiny_series)
        assert profile.count == tiny_series.speeds.size

    def test_bin_edges_span_plausible_speeds(self):
        edges = np.asarray(SPEED_BIN_EDGES)
        assert edges[0] == 0.0 and edges[-1] == 130.0
        assert np.all(np.diff(edges) > 0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ReferenceProfile.from_speeds(np.array([]))


class TestPsi:
    def test_identical_distribution_is_near_zero(self, rng):
        speeds = rng.normal(75.0, 12.0, size=8000)
        profile = ReferenceProfile.from_speeds(speeds[:4000])
        assert profile.psi(speeds[4000:]) < 0.05

    def test_shifted_distribution_is_large(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(90.0, 8.0, size=4000))
        congested = rng.normal(35.0, 8.0, size=4000)
        assert profile.psi(congested) > 0.25

    def test_psi_monotone_in_shift(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(80.0, 10.0, size=4000))
        psis = [
            profile.psi(rng.normal(80.0 - delta, 10.0, size=2000))
            for delta in (0.0, 15.0, 30.0)
        ]
        assert psis[0] < psis[1] < psis[2]

    def test_out_of_range_speeds_are_clipped_not_dropped(self):
        profile = ReferenceProfile.from_speeds(np.full(100, 60.0))
        # 200 km/h lands in the top bin rather than vanishing.
        assert np.isfinite(profile.psi(np.full(50, 200.0)))


class TestDayBins:
    def test_from_series_builds_weekday_and_offday_bins(self, tiny_series):
        profile = ReferenceProfile.from_series(tiny_series)
        labels = [label for label, _ in profile.day_bins]
        # tiny_series spans 6 days from a Sunday: both day types present.
        assert labels == ["weekday", "offday"]
        weekday_mask = tiny_series.day_types[:, 0] > 0.5
        weekday = profile.day_profile("weekday")
        offday = profile.day_profile("offday")
        assert weekday.count == int(weekday_mask.sum()) * tiny_series.num_segments
        assert weekday.count + offday.count == profile.count
        # Weekend traffic runs structurally faster than commute traffic.
        assert offday.mean_kmh > weekday.mean_kmh

    def test_day_profile_accessor(self, tiny_series):
        profile = ReferenceProfile.from_series(tiny_series)
        assert profile.day_profile("weekday") is not None
        assert profile.day_profile("someday") is None
        flat = ReferenceProfile.from_speeds(np.full(10, 60.0))
        assert flat.day_bins == () and flat.day_profile("weekday") is None

    def test_conditioned_psi_removes_seasonal_inflation(self, tiny_series):
        """The property the 0.25 threshold rests on: an all-offday window
        scores high against the pooled profile but low against its own
        day bin."""
        profile = ReferenceProfile.from_series(tiny_series)
        offday_mask = tiny_series.day_types[:, 0] <= 0.5
        offday_speeds = tiny_series.speeds[:, offday_mask].ravel()
        pooled = profile.psi(offday_speeds)
        conditioned = profile.day_profile("offday").psi(offday_speeds)
        assert conditioned < pooled


class TestPersistence:
    def test_state_roundtrip(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(70.0, 9.0, size=1000))
        clone = ReferenceProfile.from_state(profile.state_dict())
        assert clone == profile

    def test_state_roundtrip_with_day_bins(self, tiny_series):
        profile = ReferenceProfile.from_series(tiny_series)
        assert profile.day_bins  # the interesting case
        clone = ReferenceProfile.from_state(profile.state_dict())
        assert clone == profile

    def test_legacy_state_without_day_bins_loads(self, rng):
        profile = ReferenceProfile.from_speeds(rng.normal(70.0, 9.0, size=100))
        state = profile.state_dict()
        assert "day_bins" not in state  # empty bins stay off the wire
        clone = ReferenceProfile.from_state(state)
        assert clone.day_bins == ()

    def test_state_dict_is_json_safe(self, tiny_series):
        import json

        profile = ReferenceProfile.from_series(tiny_series)
        json.dumps(profile.state_dict())  # must not raise, bins included
