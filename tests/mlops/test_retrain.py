"""Retrainer: warm start, time-ordered split, failure-as-result."""

from __future__ import annotations

import pytest

from repro.core import load_model
from repro.mlops import HistoryBuffer, RetrainSpec, retrain_challenger
from repro.mlops.retrain import _time_ordered_split

from .conftest import tick_of

SPEC = RetrainSpec(epochs=1, batch_size=16, max_steps_per_epoch=4, min_windows=48)


@pytest.fixture(scope="module")
def history(tiny_series):
    """A 400-tick snapshot taken through the ring buffer, as live."""
    buffer = HistoryBuffer(tiny_series.num_segments, capacity=512)
    for step in range(400):
        buffer.ingest_tick(tick_of(tiny_series, step))
    return buffer.snapshot()


class TestTimeOrderedSplit:
    def test_holdout_is_the_newest_tail(self):
        split = _time_ordered_split(100, holdout=20, gap=13)
        assert split.test.tolist() == list(range(80, 100))
        assert split.train.tolist() == list(range(0, 67))
        assert split.validation.size == 0

    def test_gap_prevents_window_overlap(self):
        split = _time_ordered_split(100, holdout=20, gap=13)
        assert split.train.max() + 13 < split.test.min()

    def test_degenerate_history_yields_empty_train(self):
        split = _time_ordered_split(20, holdout=18, gap=13)
        assert split.train.size == 0


class TestRetrain:
    def test_produces_loadable_challenger(self, champion_checkpoint, history, tmp_path):
        result = retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=3, workdir=tmp_path / "c"
        )
        assert result.ok, result.error
        challenger = load_model(result.challenger_dir)
        assert challenger.kind == "F"
        assert challenger.scalers is not None

    def test_reuses_champion_scalers(self, champion_checkpoint, history, tmp_path):
        result = retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=3, workdir=tmp_path / "c"
        )
        champion = load_model(champion_checkpoint)
        challenger = load_model(result.challenger_dir)
        assert challenger.scalers.speed.minimum == champion.scalers.speed.minimum
        assert challenger.scalers.speed.maximum == champion.scalers.speed.maximum

    def test_challenger_profile_reflects_recent_history(
        self, champion_checkpoint, history, tmp_path
    ):
        result = retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=3, workdir=tmp_path / "c"
        )
        challenger = load_model(result.challenger_dir)
        assert challenger.reference_profile is not None
        assert challenger.reference_profile.count == history.speeds.size

    def test_deterministic_under_seed(self, champion_checkpoint, history, tmp_path):
        from repro.core import model_fingerprint

        first = retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=11, workdir=tmp_path / "a"
        )
        second = retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=11, workdir=tmp_path / "b"
        )
        assert model_fingerprint(load_model(first.challenger_dir)) == model_fingerprint(
            load_model(second.challenger_dir)
        )

    def test_holdout_windows_are_newest_and_unseen(self, champion_checkpoint, history, tmp_path):
        result = retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=3, workdir=tmp_path / "c"
        )
        assert result.holdout.max() == result.dataset.features.num_windows - 1
        gap = result.dataset.config.alpha + result.dataset.config.beta
        assert result.dataset.split.train.max() + gap < result.holdout.min()

    def test_insufficient_history_is_a_result_not_an_exception(
        self, champion_checkpoint, tiny_series, tmp_path
    ):
        buffer = HistoryBuffer(tiny_series.num_segments, capacity=64)
        for step in range(40):
            buffer.ingest_tick(tick_of(tiny_series, step))
        result = retrain_challenger(
            champion_checkpoint, buffer.snapshot(), spec=SPEC, seed=3, workdir=tmp_path / "c"
        )
        assert result.status == "insufficient_history"
        assert not result.ok
        assert result.challenger_dir is None

    def test_broken_checkpoint_is_a_failed_result(self, history, tmp_path):
        result = retrain_challenger(
            tmp_path / "no-such-checkpoint", history, spec=SPEC, seed=3, workdir=tmp_path / "c"
        )
        assert result.status == "failed"
        assert result.error

    def test_emits_retrain_events(self, champion_checkpoint, history, tmp_path):
        from repro.obs import RunRecorder, validate_run_dir
        import json

        run_dir = tmp_path / "run"
        recorder = RunRecorder(run_dir, manifest={})
        retrain_challenger(
            champion_checkpoint, history, spec=SPEC, seed=3,
            workdir=tmp_path / "c", recorder=recorder,
        )
        recorder.close()
        assert validate_run_dir(run_dir) == []
        kinds = [
            json.loads(line)["kind"]
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        assert "mlops_retrain_start" in kinds
        assert "mlops_retrain_end" in kinds
