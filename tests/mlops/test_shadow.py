"""Shadow evaluation: the pinned promotion rule, per regime."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core import load_model
from repro.mlops import PromotionRule, evaluate_shadow
from repro.mlops.shadow import _predict_kmh


@pytest.fixture(scope="module")
def champion(champion_checkpoint):
    return load_model(champion_checkpoint)


@pytest.fixture(scope="module")
def holdout(tiny_dataset):
    return tiny_dataset.subset("test")[:64]


def degraded_clone(champion, scale: float = 0.2):
    """A strictly worse model: the champion with dampened weights."""
    clone = copy.deepcopy(champion)
    state = clone.predictor.state_dict()
    clone.predictor.load_state_dict({k: v * scale for k, v in state.items()})
    return clone


class TestDecision:
    def test_identical_models_are_not_promoted(self, champion, tiny_dataset, holdout):
        report = evaluate_shadow(champion, copy.deepcopy(champion), tiny_dataset, holdout)
        assert not report.promote
        assert report.decision.rel_improvement == pytest.approx(0.0)

    def test_clear_improvement_is_promoted(self, champion, tiny_dataset, holdout):
        weaker = degraded_clone(champion)
        report = evaluate_shadow(weaker, champion, tiny_dataset, holdout)
        assert report.promote
        assert report.decision.rel_improvement > 0.02

    def test_clear_regression_is_rejected(self, champion, tiny_dataset, holdout):
        report = evaluate_shadow(champion, degraded_clone(champion), tiny_dataset, holdout)
        assert not report.promote

    def test_below_threshold_improvement_is_rejected(self, champion, tiny_dataset, holdout):
        rule = PromotionRule(min_rel_improvement=0.99)
        weaker = degraded_clone(champion, scale=0.9)
        report = evaluate_shadow(weaker, champion, tiny_dataset, holdout, rule=rule)
        assert not report.promote
        assert "below required" in report.decision.reason

    def test_empty_holdout_raises(self, champion, tiny_dataset):
        with pytest.raises(ValueError, match="at least one"):
            evaluate_shadow(champion, champion, tiny_dataset, np.array([], dtype=int))


def stub_model(dataset, kmh: np.ndarray):
    """A fake APOTS whose km/h predictions over the holdout are exact."""
    from types import SimpleNamespace

    speed = dataset.features.scalers.speed
    scaled = (np.asarray(kmh) - speed.minimum) / (speed.maximum - speed.minimum)
    return SimpleNamespace(
        predictor=SimpleNamespace(predict=lambda images, day_types, flat: scaled)
    )


class TestRegimeGuard:
    def test_regime_regression_blocks_whole_set_win(self, tiny_dataset):
        """A whole-set win must not buy a per-regime loss (pinned rule)."""
        from repro.metrics.regimes import classify_regimes

        # The short holdout prefix holds no abrupt samples at all; use
        # the full test split so the victim regime is populated.
        holdout = tiny_dataset.subset("test")
        targets = tiny_dataset.features.targets_kmh[holdout]
        last_input = tiny_dataset.features.last_input_kmh[holdout]
        masks = classify_regimes(last_input, targets).as_dict()
        # Regress the smallest populated regime so the whole-set MAE
        # still improves: champion is off by 4 everywhere, challenger is
        # perfect except 20 km/h off inside the victim regime.
        victim = min(
            (r for r in ("abrupt_dec", "abrupt_acc", "normal") if masks[r].sum() > 0),
            key=lambda r: masks[r].sum(),
        )
        champion_kmh = targets + 4.0
        challenger_kmh = targets.astype(float).copy()
        challenger_kmh[masks[victim]] += 20.0
        rule = PromotionRule(
            min_rel_improvement=0.0, max_regime_regression=0.15, min_regime_samples=1
        )
        report = evaluate_shadow(
            stub_model(tiny_dataset, champion_kmh),
            stub_model(tiny_dataset, challenger_kmh),
            tiny_dataset,
            holdout,
            rule=rule,
        )
        assert report.decision.rel_improvement > 0  # whole-set win...
        assert not report.promote  # ...vetoed by the regime guard
        assert victim in report.decision.reason

    def test_uniform_improvement_passes_the_guard(self, tiny_dataset, holdout):
        targets = tiny_dataset.features.targets_kmh[holdout]
        rule = PromotionRule(min_rel_improvement=0.02, min_regime_samples=1)
        report = evaluate_shadow(
            stub_model(tiny_dataset, targets + 4.0),
            stub_model(tiny_dataset, targets + 1.0),
            tiny_dataset,
            holdout,
            rule=rule,
        )
        assert report.promote

    def test_report_carries_per_regime_errors(self, champion, tiny_dataset, holdout):
        report = evaluate_shadow(champion, copy.deepcopy(champion), tiny_dataset, holdout)
        for errors in (report.champion, report.challenger):
            assert set(errors) == {"whole", "normal", "abrupt_acc", "abrupt_dec"}
            assert np.isfinite(errors["whole"]["mae"])


class TestPredictHelper:
    def test_predictions_are_kmh_scaled(self, champion, tiny_dataset, holdout):
        predicted = _predict_kmh(champion, tiny_dataset, holdout)
        assert predicted.shape == (len(holdout),)
        assert np.all(predicted > 0) and np.all(predicted < 200)


class TestEvents:
    def test_emits_schema_valid_shadow_event(self, champion, tiny_dataset, holdout, tmp_path):
        import json

        from repro.obs import RunRecorder, validate_run_dir

        recorder = RunRecorder(tmp_path, manifest={})
        evaluate_shadow(
            champion, copy.deepcopy(champion), tiny_dataset, holdout, recorder=recorder
        )
        recorder.close()
        assert validate_run_dir(tmp_path) == []
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        (shadow,) = [e for e in events if e["kind"] == "mlops_shadow"]
        assert shadow["promote"] is False
        assert shadow["num_samples"] == len(holdout)
