"""Shared fixtures for the network-layer tests.

The two canonical graphs (a 4x4 grid city and a ring-and-spokes town)
are built once per session; graph construction is deterministic, so
sharing them across tests cannot leak state.
"""

from __future__ import annotations

import pytest

from repro.network import RoadGraph, grid_city, ring_and_spokes


@pytest.fixture(scope="session")
def grid() -> RoadGraph:
    return grid_city(4, 4, seed=0)


@pytest.fixture(scope="session")
def ring() -> RoadGraph:
    return ring_and_spokes(num_spokes=6, seed=0)
