"""Tests for :mod:`repro.network.demand` — zones, gravity OD, assignment."""

import datetime as dt

import numpy as np
import pytest

from repro.network import (
    Zone,
    assign_od_to_segments,
    day_demand_scale,
    gravity_od_matrix,
    segment_demand_weights,
    zones_from_graph,
)
from repro.traffic.types import SimulationConfig


class TestZones:
    def test_one_zone_per_graph_zone(self, grid):
        zones = zones_from_graph(grid)
        assert len(zones) == grid.num_zones
        assert [z.zone_id for z in zones] == list(range(grid.num_zones))

    def test_deterministic_by_seed(self, grid):
        assert zones_from_graph(grid, seed=3) == zones_from_graph(grid, seed=3)
        first = zones_from_graph(grid, seed=0)[0]
        other = zones_from_graph(grid, seed=1)[0]
        assert first.population != other.population

    def test_centroids_are_member_means(self, grid):
        zones = zones_from_graph(grid)
        positions = grid.segment_positions()
        members = positions[np.asarray(grid.zone_of) == 0]
        assert zones[0].centroid == pytest.approx(tuple(members.mean(axis=0)))

    def test_nonpositive_mass_rejected(self):
        with pytest.raises(ValueError, match="masses must be positive"):
            Zone(0, "z", (0.0, 0.0), population=0.0, attraction=10.0)


class TestGravity:
    def test_matrix_is_a_distribution(self, grid):
        od = gravity_od_matrix(zones_from_graph(grid))
        assert od.shape == (grid.num_zones, grid.num_zones)
        assert od.sum() == pytest.approx(1.0)
        assert (od >= 0).all()
        assert np.diagonal(od) == pytest.approx(0.0)

    def test_closer_pairs_attract_more(self):
        # Equal masses at 1, 2 and 10 km: the near pair dominates.
        zones = [
            Zone(0, "a", (0.0, 0.0), 1000.0, 1000.0),
            Zone(1, "b", (2.0, 0.0), 1000.0, 1000.0),
            Zone(2, "c", (10.0, 0.0), 1000.0, 1000.0),
        ]
        od = gravity_od_matrix(zones)
        assert od[0, 1] > od[0, 2]

    def test_single_zone_has_no_interzonal_demand(self):
        od = gravity_od_matrix([Zone(0, "only", (0.0, 0.0), 1.0, 1.0)])
        assert od.shape == (1, 1) and od.sum() == 0.0

    def test_bad_deterrence_rejected(self, grid):
        with pytest.raises(ValueError, match="deterrence"):
            gravity_od_matrix(zones_from_graph(grid), deterrence=0.0)


class TestDayScale:
    def test_matches_corridor_calendar(self):
        config = SimulationConfig(num_days=1)
        monday = dt.date(2026, 8, 3)
        saturday = dt.date(2026, 8, 8)
        assert day_demand_scale(monday, config) == 1.0
        assert day_demand_scale(saturday, config) == config.weekend_demand_scale
        for holiday in config.holidays:
            assert day_demand_scale(holiday, config) == config.holiday_demand_scale


class TestAssignment:
    def test_loads_cover_shortest_paths(self, grid):
        od = gravity_od_matrix(zones_from_graph(grid))
        loads = assign_od_to_segments(grid, od)
        assert loads.shape == (len(grid),)
        assert (loads >= 0).all() and loads.sum() > 0

    def test_shape_mismatch_rejected(self, grid):
        with pytest.raises(ValueError, match="od must be"):
            assign_od_to_segments(grid, np.ones((2, 2)))

    def test_weights_mean_anchored_and_clipped(self, grid):
        od = gravity_od_matrix(zones_from_graph(grid))
        weights = segment_demand_weights(grid, od)
        assert weights.shape == (len(grid),)
        assert (weights >= 0.6).all() and (weights <= 1.6).all()
        # Routed segments run hotter than bypassed ones.
        assert weights.max() > weights.min()

    def test_no_demand_gives_unit_weights(self, grid):
        od = np.zeros((grid.num_zones, grid.num_zones))
        np.testing.assert_array_equal(
            segment_demand_weights(grid, od), np.ones(len(grid))
        )

    def test_bad_spread_rejected(self, grid):
        od = gravity_od_matrix(zones_from_graph(grid))
        with pytest.raises(ValueError, match="spread"):
            segment_demand_weights(grid, od, spread=1.5)
