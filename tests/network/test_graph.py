"""Tests for :mod:`repro.network.graph` — topology, BFS order, corridor views."""

import numpy as np
import pytest

from repro.network import RoadGraph, from_corridor, grid_city, ring_and_spokes
from repro.network.graph import Junction
from repro.traffic import Corridor
from repro.traffic.types import RoadSegment


class TestGenerators:
    def test_grid_city_counts(self, grid):
        # 4x4 junctions, every neighbouring pair a two-way street.
        assert len(grid) == 2 * (4 * 3 + 4 * 3) == 48
        assert len(grid.junctions) == 16
        assert grid.num_zones == 4

    def test_ring_and_spokes_counts(self, ring):
        assert len(ring) == 6 * 6  # ring arcs + spokes + spurs, two-way
        assert len(ring.junctions) == 13  # hub + 6 ring + 6 outer
        assert ring.num_zones == 7

    def test_generators_deterministic(self, grid, ring):
        assert grid == grid_city(4, 4, seed=0)
        assert ring == ring_and_spokes(num_spokes=6, seed=0)

    def test_seed_changes_attributes_not_topology(self, grid):
        other = grid_city(4, 4, seed=1)
        assert other != grid
        assert other.tails == grid.tails and other.heads == grid.heads

    def test_bfs_ordered_by_construction(self, grid, ring):
        assert grid.is_bfs_ordered()
        assert ring.is_bfs_ordered()

    def test_target_is_central(self, grid):
        positions = grid.segment_positions()
        centre = positions.mean(axis=0)
        distances = np.linalg.norm(positions - centre, axis=1)
        assert distances[grid.target_index] == pytest.approx(distances.min())

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError, match="at least 2x2"):
            grid_city(1, 5)
        with pytest.raises(ValueError, match="at least 3 spokes"):
            ring_and_spokes(num_spokes=2)


class TestTopology:
    def test_two_way_streets_exclude_reverse_lane(self, grid):
        # No segment may feed (or be fed by) its own reverse carriageway.
        for seg in range(len(grid)):
            reverse = [
                other
                for other in range(len(grid))
                if grid.tails[other] == grid.heads[seg]
                and grid.heads[other] == grid.tails[seg]
            ]
            for rev in reverse:
                assert rev not in grid.downstream_of(seg)
                assert rev not in grid.upstream_of(seg)

    def test_downstream_upstream_are_duals(self, grid):
        for seg in range(len(grid)):
            for down in grid.downstream_of(seg):
                assert seg in grid.upstream_of(down)

    def test_interior_signal_junction_degree(self, grid):
        # An interior junction joins 4 streets; each incoming segment can
        # continue onto 3 others (straight, left, right — no U-turn).
        interior = [j.junction_id for j in grid.junctions if j.kind == "signal"]
        assert interior  # 4x4 grid has a 2x2 interior
        for seg in range(len(grid)):
            if grid.heads[seg] in interior:
                assert len(grid.downstream_of(seg)) == 3

    def test_k_hop_matches_plus_minus_m_on_corridor(self):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(0))
        graph = from_corridor(corridor)
        n = len(graph)
        for seg in (0, 1, n // 2, n - 1):
            for k in (0, 1, 2):
                expected = list(range(max(0, seg - k), min(n, seg + k + 1)))
                assert graph.k_hop_neighbourhood(seg, k) == expected

    def test_k_hop_validation(self, grid):
        with pytest.raises(ValueError, match="non-negative"):
            grid.k_hop_neighbourhood(0, -1)
        with pytest.raises(ValueError, match="outside graph"):
            grid.k_hop_neighbourhood(len(grid), 1)

    def test_adjacency_weights_are_free_flow_minutes(self, grid):
        adjacency = grid.adjacency()
        assert set(adjacency) == set(range(len(grid)))
        for seg, edges in adjacency.items():
            assert [j for j, _ in edges] == list(grid.downstream_of(seg))
            for j, weight in edges:
                expected = grid.segments[j].length_km / grid.segments[j].free_flow_kmh * 60.0
                assert weight == pytest.approx(expected)


class TestCorridorViews:
    def test_from_corridor_is_identity_path(self):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(0))
        graph = from_corridor(corridor)
        assert len(graph) == len(corridor)
        assert graph.corridor is corridor
        assert graph.as_corridor() is corridor
        assert graph.is_bfs_ordered()
        for seg in range(len(graph) - 1):
            assert graph.downstream_of(seg) == (seg + 1,)
        assert graph.downstream_of(len(graph) - 1) == ()

    def test_as_corridor_wraps_generated_graph(self, grid):
        corridor = grid.as_corridor()
        assert len(corridor) == len(grid)
        assert corridor.target_index == grid.target_index

    def test_path_corridor_renumbers_and_validates(self, grid):
        start = 0
        path = [start]
        while len(path) < 4:
            path.append(grid.downstream_of(path[-1])[0])
        corridor = grid.path_corridor(path)
        assert len(corridor) == 4
        assert [s.segment_id for s in corridor.segments] == [0, 1, 2, 3]
        assert corridor.segments[2].name == grid.segments[path[2]].name
        disconnected = [path[0], path[0]]  # a segment never feeds itself
        with pytest.raises(ValueError, match="not connected"):
            grid.path_corridor(disconnected)


class TestValidation:
    def make(self, **overrides):
        kwargs = dict(
            segments=tuple(
                RoadSegment(i, f"s{i}", 1.0, 60.0, 1800.0) for i in range(2)
            ),
            junctions=tuple(
                Junction(i, "through", float(i), 0.0) for i in range(3)
            ),
            tails=(0, 1),
            heads=(1, 2),
            zone_of=(0, 0),
            num_zones=1,
            target_index=0,
        )
        kwargs.update(overrides)
        return RoadGraph(**kwargs)

    def test_valid_minimal_graph(self):
        assert len(self.make()) == 2

    def test_rejects_misnumbered_segments(self):
        bad = tuple(RoadSegment(i + 1, f"s{i}", 1.0, 60.0, 1800.0) for i in range(2))
        with pytest.raises(ValueError, match="ids must equal positions"):
            self.make(segments=bad)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            self.make(tails=(0, 1), heads=(0, 2))

    def test_rejects_unknown_junction(self):
        with pytest.raises(ValueError, match="unknown junction"):
            self.make(heads=(1, 9))

    def test_rejects_bad_zone(self):
        with pytest.raises(ValueError, match="zone_of"):
            self.make(zone_of=(0, 5))

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target_index"):
            self.make(target_index=7)
