"""Tests for :mod:`repro.network.kpis` — VKT/VHT, regimes, bottlenecks."""

import numpy as np
import pytest

from repro.network import (
    IncidentCascade,
    Scenario,
    compare_kpis,
    compute_kpis,
    invert_congestion_demand,
    simulate_network,
)
from repro.traffic.simulator import congestion_speed_factor
from repro.traffic.types import SimulationConfig


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(num_days=2, seed=3)


@pytest.fixture(scope="module")
def baseline(grid, config):
    return simulate_network(grid, config)


@pytest.fixture(scope="module")
def stressed(grid, config):
    scenario = Scenario(
        "jam",
        (IncidentCascade(segment=grid.target_index, start_step=90, severity=0.3,
                         duration_steps=30),),
    )
    return simulate_network(grid, config, scenario=scenario)


class TestInversion:
    def test_round_trips_the_congestion_law(self, config):
        # Start above the ratio clip (ratios very close to 1 are floored
        # by the 0.999 clip, deliberately).
        demand = np.linspace(0.18, 1.1, 40)
        ratio = congestion_speed_factor(config, demand)
        recovered = invert_congestion_demand(config, ratio)
        np.testing.assert_allclose(recovered, demand, rtol=1e-6)

    def test_extreme_ratios_stay_finite(self, config):
        recovered = invert_congestion_demand(config, np.array([0.0, 1.0]))
        assert np.isfinite(recovered).all()
        assert recovered[0] > recovered[1]  # slower -> more demand


class TestComputeKpis:
    def test_bundle_is_coherent(self, grid, baseline, config):
        kpis = compute_kpis(grid, baseline, config)
        assert kpis.vkt > 0 and kpis.vht > 0
        assert kpis.vkt / kpis.vht == pytest.approx(
            baseline.speeds.mean(), rel=0.5
        )  # VKT/VHT is a flow-weighted mean speed
        assert 0 <= kpis.free_flow_share <= 1 and 0 <= kpis.congested_share <= 1
        assert kpis.mean_speed_kmh == pytest.approx(baseline.speeds.mean())
        assert kpis.total_delay_vh >= 0
        assert kpis.spillback_onsets >= 0

    def test_regime_means_ordered(self, grid, baseline, config):
        kpis = compute_kpis(grid, baseline, config)
        if kpis.congested_share > 0 and kpis.free_flow_share > 0:
            assert kpis.mean_speed_congested_kmh < kpis.mean_speed_free_kmh

    def test_bottlenecks_ranked_descending_and_positive(self, grid, stressed, config):
        kpis = compute_kpis(grid, stressed, config, top_k=3)
        assert len(kpis.bottlenecks) <= 3
        delays = [delay for _, delay in kpis.bottlenecks]
        assert delays == sorted(delays, reverse=True)
        assert all(delay > 0 for delay in delays)

    def test_mismatched_series_rejected(self, grid, config):
        from repro.network import grid_city

        other = simulate_network(grid_city(3, 3, seed=0), SimulationConfig(num_days=1))
        with pytest.raises(ValueError, match="segments but graph"):
            compute_kpis(grid, other, config)

    def test_render_mentions_every_headline(self, grid, baseline, config):
        text = compute_kpis(grid, baseline, config).render()
        for token in ("VKT", "VHT", "mean speed", "congested share", "spillback"):
            assert token in text


class TestCompare:
    def test_incident_increases_delay_and_drops_speed(self, grid, baseline, stressed, config):
        deltas = compare_kpis(
            compute_kpis(grid, baseline, config), compute_kpis(grid, stressed, config)
        )
        assert set(deltas) == {
            "vkt_delta",
            "vht_delta",
            "mean_speed_delta_kmh",
            "congested_share_delta",
            "total_delay_delta_vh",
            "spillback_onsets_delta",
        }
        assert deltas["total_delay_delta_vh"] > 0
        assert deltas["mean_speed_delta_kmh"] < 0

    def test_self_comparison_is_zero(self, grid, baseline, config):
        kpis = compute_kpis(grid, baseline, config)
        assert all(value == 0 for value in compare_kpis(kpis, kpis).values())
