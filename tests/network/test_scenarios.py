"""Tests for :mod:`repro.network.scenarios` — declarative configs -> schedules."""

import numpy as np
import pytest

from repro.network import (
    EventPulse,
    IncidentCascade,
    ModifierSchedule,
    Scenario,
    WeatherFront,
    compile_scenario,
)

STEPS = 96


class TestElementValidation:
    def test_incident_bounds(self):
        with pytest.raises(ValueError, match="severity"):
            IncidentCascade(segment=0, start_step=0, severity=1.0)
        with pytest.raises(ValueError, match="duration"):
            IncidentCascade(segment=0, start_step=0, duration_steps=0)
        with pytest.raises(ValueError, match="cascade_decay"):
            IncidentCascade(segment=0, start_step=0, cascade_decay=0.0)

    def test_pulse_bounds(self):
        with pytest.raises(ValueError, match="duration"):
            EventPulse(zone=0, start_step=0, duration_steps=0)
        with pytest.raises(ValueError, match="demand_boost"):
            EventPulse(zone=0, start_step=0, duration_steps=4, demand_boost=2.0)

    def test_front_bounds(self):
        with pytest.raises(ValueError, match="at least 2 steps"):
            WeatherFront(start_step=0, duration_steps=1)
        with pytest.raises(ValueError, match="non-zero vector"):
            WeatherFront(start_step=0, duration_steps=8, direction=(0.0, 0.0))
        with pytest.raises(ValueError, match="speed_drop"):
            WeatherFront(start_step=0, duration_steps=8, speed_drop=1.0)

    def test_scenario_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            Scenario("", ())


class TestCompile:
    def test_identity_schedule(self, grid):
        schedule = compile_scenario(Scenario("empty", ()), grid, STEPS)
        assert np.array_equal(schedule.speed_factor, np.ones((len(grid), STEPS)))
        assert not schedule.demand_boost.any()
        assert not schedule.event_flags.any()
        assert not schedule.precipitation_extra.any()

    def test_compilation_is_rng_free_deterministic(self, grid):
        scenario = Scenario(
            "mix",
            (
                IncidentCascade(segment=grid.target_index, start_step=10),
                EventPulse(zone=0, start_step=30, duration_steps=16),
                WeatherFront(start_step=50, duration_steps=24),
            ),
        )
        first = compile_scenario(scenario, grid, STEPS)
        second = compile_scenario(scenario, grid, STEPS)
        for name in ("speed_factor", "demand_boost", "event_flags", "precipitation_extra"):
            assert np.array_equal(getattr(first, name), getattr(second, name)), name

    def test_unknown_element_rejected(self, grid):
        scenario = Scenario.__new__(Scenario)
        object.__setattr__(scenario, "name", "bad")
        object.__setattr__(scenario, "elements", ("not-an-element",))
        with pytest.raises(TypeError, match="unknown scenario element"):
            compile_scenario(scenario, grid, STEPS)

    def test_bad_total_steps(self, grid):
        with pytest.raises(ValueError, match="total_steps"):
            compile_scenario(Scenario("x", ()), grid, 0)


class TestIncidentCascade:
    def test_seed_segment_hit_then_recovery(self, grid):
        incident = IncidentCascade(
            segment=grid.target_index, start_step=10, severity=0.4,
            duration_steps=6, recovery_steps=4, cascade_depth=0,
        )
        schedule = compile_scenario(Scenario("i", (incident,)), grid, STEPS)
        factor = schedule.speed_factor[grid.target_index]
        assert (factor[10:16] == 0.4).all()
        # Linear recovery back to 1 after the active phase.
        assert (np.diff(factor[15:20]) > 0).all()
        assert factor[20:].min() == 1.0
        assert (schedule.event_flags[grid.target_index, 10:16] == 1.0).all()
        assert not schedule.event_flags[grid.target_index, 16:].any()

    def test_cascade_spreads_upstream_delayed_and_damped(self, grid):
        seed = grid.target_index
        incident = IncidentCascade(
            segment=seed, start_step=10, severity=0.4,
            cascade_depth=1, cascade_delay_steps=5,
        )
        schedule = compile_scenario(Scenario("i", (incident,)), grid, STEPS)
        ups = grid.upstream_of(seed)
        assert ups
        share = (1.0 - 0.4) * incident.cascade_decay / len(ups)
        for up in ups:
            factor = schedule.speed_factor[up]
            assert (factor[:15] == 1.0).all()  # delayed by one wave
            assert factor[15] == pytest.approx(1.0 - share)
            # Secondary incidents are weaker than the seed.
            assert factor.min() > schedule.speed_factor[seed].min()
        # Untouched far-away segments stay clean: depth 1 reaches only ups.
        touched = {seed, *ups}
        untouched = next(s for s in range(len(grid)) if s not in touched)
        assert (schedule.speed_factor[untouched] == 1.0).all()

    def test_depth_zero_stays_local(self, grid):
        incident = IncidentCascade(segment=grid.target_index, start_step=0, cascade_depth=0)
        schedule = compile_scenario(Scenario("i", (incident,)), grid, STEPS)
        hit = np.flatnonzero((schedule.speed_factor < 1.0).any(axis=1))
        assert list(hit) == [grid.target_index]

    def test_segment_out_of_range(self, grid):
        incident = IncidentCascade(segment=len(grid), start_step=0)
        with pytest.raises(ValueError, match="outside graph"):
            compile_scenario(Scenario("i", (incident,)), grid, STEPS)


class TestEventPulse:
    def test_zone_members_get_full_boost_approaches_half(self, grid):
        pulse = EventPulse(zone=0, start_step=20, duration_steps=16, demand_boost=0.3)
        schedule = compile_scenario(Scenario("p", (pulse,)), grid, STEPS)
        members = [s for s in range(len(grid)) if grid.zone_of[s] == 0]
        approach = set()
        for s in members:
            approach.update(grid.neighbours(s))
        approach -= set(members)
        mid = 20 + 8  # flat top of the envelope
        for s in members:
            assert schedule.demand_boost[s, mid] == pytest.approx(0.3)
        for s in approach:
            assert schedule.demand_boost[s, mid] == pytest.approx(0.15)
        # Ramps: boost at the first step is below the flat top.
        assert 0 < schedule.demand_boost[members[0], 20] < 0.3
        assert not schedule.demand_boost[:, :20].any()

    def test_pulse_beyond_horizon_is_noop(self, grid):
        pulse = EventPulse(zone=0, start_step=STEPS + 10, duration_steps=8)
        schedule = compile_scenario(Scenario("p", (pulse,)), grid, STEPS)
        assert not schedule.demand_boost.any()

    def test_zone_out_of_range(self, grid):
        pulse = EventPulse(zone=grid.num_zones, start_step=0, duration_steps=4)
        with pytest.raises(ValueError, match="outside graph zones"):
            compile_scenario(Scenario("p", (pulse,)), grid, STEPS)


class TestWeatherFront:
    def test_front_sweeps_in_direction_order(self, grid):
        front = WeatherFront(
            start_step=10, duration_steps=40, direction=(1.0, 0.0), width_km=2.0
        )
        schedule = compile_scenario(Scenario("w", (front,)), grid, STEPS)
        projection = grid.segment_positions() @ np.array([1.0, 0.0])
        west = int(np.argmin(projection))
        east = int(np.argmax(projection))
        # The band reaches the west side before the east side.
        west_peak = int(np.argmin(schedule.speed_factor[west]))
        east_peak = int(np.argmin(schedule.speed_factor[east]))
        assert west_peak < east_peak
        assert schedule.speed_factor.min() >= 1.0 - front.speed_drop - 1e-9

    def test_precipitation_channel_fed_inside_window_only(self, grid):
        front = WeatherFront(start_step=10, duration_steps=20, intensity_mm=0.5)
        schedule = compile_scenario(Scenario("w", (front,)), grid, STEPS)
        assert schedule.precipitation_extra.shape == (STEPS,)
        assert (schedule.precipitation_extra[10:30] > 0).all()
        assert not schedule.precipitation_extra[:10].any()
        assert not schedule.precipitation_extra[30:].any()
        assert schedule.precipitation_extra.max() <= 0.5


class TestModifierSchedule:
    def test_identity_shapes(self):
        schedule = ModifierSchedule.identity(5, 7)
        assert schedule.speed_factor.shape == (5, 7)
        assert schedule.demand_boost.shape == (5, 7)
        assert schedule.event_flags.shape == (5, 7)
        assert schedule.precipitation_extra.shape == (7,)

    def test_elements_compose_via_min_and_sum(self, grid):
        one = IncidentCascade(segment=grid.target_index, start_step=10, cascade_depth=0)
        two = WeatherFront(start_step=5, duration_steps=30)
        combined = compile_scenario(Scenario("c", (one, two)), grid, STEPS)
        solo_incident = compile_scenario(Scenario("a", (one,)), grid, STEPS)
        solo_front = compile_scenario(Scenario("b", (two,)), grid, STEPS)
        np.testing.assert_array_equal(
            combined.speed_factor,
            np.minimum(solo_incident.speed_factor, solo_front.speed_factor),
        )
