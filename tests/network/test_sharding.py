"""Tests for :mod:`repro.network.sharding` — graph-aware shard cuts."""

import pytest

from repro.fleet.router import ShardMap
from repro.network import crossing_edges, grid_city, partition_starts


class TestPartitionStarts:
    def test_valid_shardmap_inputs(self, grid):
        for shards in (1, 2, 3, 4):
            starts = partition_starts(grid, shards)
            assert len(starts) == shards
            assert starts[0] == 0
            assert list(starts) == sorted(set(starts))
            # The tuple is a drop-in ShardMap override.
            shard_map = ShardMap(len(grid), shards, starts=starts)
            assert shard_map.starts == starts

    def test_never_worse_than_balanced(self, grid):
        n = len(grid)
        for shards in (2, 3, 4, 6):
            graph_aware = crossing_edges(grid, partition_starts(grid, shards))
            balanced = crossing_edges(grid, tuple((i * n) // shards for i in range(shards)))
            assert graph_aware <= balanced

    def test_improves_on_balanced_somewhere(self):
        """On a larger grid at least one shard count strictly improves
        (otherwise the optimisation is a no-op and the subsystem lies)."""
        graph = grid_city(6, 6, seed=0)
        n = len(graph)
        improved = [
            crossing_edges(graph, partition_starts(graph, k))
            < crossing_edges(graph, tuple((i * n) // k for i in range(k)))
            for k in (2, 3, 4, 6, 8)
        ]
        assert any(improved)

    def test_window_zero_reproduces_balanced(self, grid):
        n = len(grid)
        for shards in (2, 4):
            assert partition_starts(grid, shards, window=0) == tuple(
                (i * n) // shards for i in range(shards)
            )

    def test_single_shard(self, grid):
        assert partition_starts(grid, 1) == (0,)

    def test_validation(self, grid):
        with pytest.raises(ValueError, match="positive"):
            partition_starts(grid, 0)
        with pytest.raises(ValueError, match="cannot split"):
            partition_starts(grid, len(grid) + 1)

    def test_deterministic(self, grid):
        assert partition_starts(grid, 4) == partition_starts(grid, 4)


class TestCrossingEdges:
    def test_one_shard_severs_nothing(self, grid):
        assert crossing_edges(grid, (0,)) == 0

    def test_counts_each_cut_edge_once(self):
        graph = grid_city(3, 3, seed=0)
        counts = []
        for cut in range(1, len(graph)):
            count = crossing_edges(graph, (0, cut))
            manual = sum(
                1
                for seg in range(len(graph))
                for other in graph.neighbours(seg)
                if other > seg and (seg < cut) != (other < cut)
            )
            assert count == manual
            counts.append(count)
        assert max(counts) > 0
