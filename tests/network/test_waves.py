"""Tests for :mod:`repro.network.waves` — the graph speed-field engine.

The two load-bearing pins: (1) a ``from_corridor`` graph reproduces the
corridor simulator **bitwise**, and (2) network runs are deterministic
(same seed -> identical arrays; a fingerprint pin catches accidental
changes to the draw order).
"""

import hashlib

import numpy as np
import pytest

from repro.network import (
    IncidentCascade,
    NetworkSimulator,
    Scenario,
    WeatherFront,
    from_corridor,
    grid_city,
    simulate_network,
)
from repro.network.waves import QUEUE_MAX, SPILL_ONSET, _graph_incident_masks
from repro.traffic import Corridor, simulate
from repro.traffic.incidents import Incident
from repro.traffic.types import SimulationConfig


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(num_days=2, seed=11)


@pytest.fixture(scope="module")
def grid_series(config):
    return simulate_network(grid_city(4, 4, seed=0), config)


class TestCorridorInvariant:
    def test_from_corridor_bitwise_identical(self, config):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(config.seed))
        reference = simulate(config, corridor)
        network = NetworkSimulator(from_corridor(corridor), config).run()
        np.testing.assert_array_equal(reference.speeds, network.speeds)
        np.testing.assert_array_equal(reference.events, network.events)
        np.testing.assert_array_equal(reference.precipitation, network.precipitation)
        assert network.corridor is corridor

    def test_scenario_breaks_delegation_but_not_shape(self, config):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(config.seed))
        graph = from_corridor(corridor)
        scenario = Scenario("front", (WeatherFront(start_step=50, duration_steps=40),))
        series = NetworkSimulator(graph, config, scenario=scenario).run()
        reference = simulate(config, corridor)
        assert series.speeds.shape == reference.speeds.shape
        assert not np.array_equal(series.speeds, reference.speeds)


class TestDeterminism:
    def test_same_seed_same_field(self, config, grid_series):
        again = simulate_network(grid_city(4, 4, seed=0), config)
        np.testing.assert_array_equal(grid_series.speeds, again.speeds)
        np.testing.assert_array_equal(grid_series.events, again.events)

    def test_seed_changes_field(self, config, grid_series):
        other = simulate_network(grid_city(4, 4, seed=0), SimulationConfig(num_days=2, seed=12))
        assert not np.array_equal(grid_series.speeds, other.speeds)

    def test_fingerprint_pin(self):
        """Bitwise determinism pin: any change to the draw order or the
        physics shows up here before it silently invalidates every
        downstream fingerprint."""
        series = simulate_network(
            grid_city(3, 3, seed=0), SimulationConfig(num_days=1, seed=2018)
        )
        fingerprint = hashlib.sha256(series.speeds.tobytes()).hexdigest()
        assert fingerprint == FINGERPRINT_3X3_1DAY


class TestSeriesShape:
    def test_traffic_series_contract(self, grid_series, config):
        assert grid_series.num_segments == 48
        assert grid_series.num_steps == config.num_days * config.steps_per_day
        assert grid_series.speeds.shape == (48, grid_series.num_steps)
        assert grid_series.temperature.shape == (grid_series.num_steps,)
        assert grid_series.day_types.shape == (grid_series.num_steps, 4)
        assert (grid_series.speeds >= config.min_speed_kmh).all()
        assert (grid_series.speeds <= config.max_speed_kmh).all()

    def test_rush_hour_slower_than_night(self, grid_series):
        weekday = grid_series.day_types[:, 0] == 1
        night = weekday & (grid_series.hours == 3)
        morning = weekday & (grid_series.hours == 8)
        assert grid_series.speeds[:, morning].mean() < grid_series.speeds[:, night].mean()


class TestDemandWeights:
    def test_hot_segments_run_slower(self, config):
        graph = grid_city(4, 4, seed=0)
        weights = np.ones(len(graph))
        hot, cold = 10, 40
        weights[hot], weights[cold] = 1.6, 0.6
        series = simulate_network(graph, config, demand_weights=weights)
        flat = simulate_network(graph, config)
        assert series.speeds[hot].mean() < flat.speeds[hot].mean()
        assert series.speeds[cold].mean() > flat.speeds[cold].mean()

    def test_bad_weights_rejected(self, config):
        graph = grid_city(4, 4, seed=0)
        with pytest.raises(ValueError, match="demand_weights must be"):
            NetworkSimulator(graph, config, demand_weights=np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            NetworkSimulator(graph, config, demand_weights=np.zeros(len(graph)))


class TestScenarioCausality:
    def test_scenario_slows_hit_segment_only_through_schedule(self, config):
        """Baseline and scenario share every random draw, so deltas are
        causal: the incident segment slows during its window."""
        graph = grid_city(4, 4, seed=0)
        seed_segment = graph.target_index
        scenario = Scenario(
            "incident",
            (IncidentCascade(segment=seed_segment, start_step=100, severity=0.35,
                             duration_steps=24, cascade_depth=0),),
        )
        baseline = simulate_network(graph, config)
        hit = simulate_network(graph, config, scenario=scenario)
        window = slice(100, 124)
        assert hit.speeds[seed_segment, window].mean() < baseline.speeds[
            seed_segment, window
        ].mean()
        # Scenario event flags land in the series' event channel.
        assert hit.events[seed_segment, window].all()
        # Far-in-time columns agree closely (same draws; only the
        # temporal kernel and spillback memory couple neighbours).
        assert abs(hit.speeds[:, :90] - baseline.speeds[:, :90]).max() < 1e-9

    def test_weather_front_feeds_precipitation_channel(self, config):
        graph = grid_city(4, 4, seed=0)
        scenario = Scenario("w", (WeatherFront(start_step=40, duration_steps=30),))
        baseline = simulate_network(graph, config)
        wet = simulate_network(graph, config, scenario=scenario)
        delta = wet.precipitation - baseline.precipitation
        assert (delta[40:70] > 0).all()
        np.testing.assert_allclose(delta[:40], 0.0)


class TestGraphIncidentMasks:
    def test_path_graph_matches_decay_power(self):
        corridor = Corridor.gyeongbu(num_segments=6, rng=np.random.default_rng(0))
        graph = from_corridor(corridor)
        incident = Incident(segment=4, start_step=10, duration_steps=6,
                            recovery_steps=4, severity=0.5, kind="accident")
        decay, delay = 0.6, 2
        factor, flags = _graph_incident_masks(graph, [incident], 60, decay, delay)
        # Depth d hits segment 4-d at start + d*delay with damping decay**d.
        for depth in range(3):
            segment = 4 - depth
            start = 10 + depth * delay
            expected = 1.0 - decay**depth * (1.0 - 0.5)
            assert factor[segment, start] == pytest.approx(expected)
            assert factor[segment, start - 1] == 1.0
        # Only the incident segment carries the event flag.
        assert flags[4, 10:16].all() and flags.sum() == 6

    def test_merge_splits_the_wave(self, grid):
        seed = grid.target_index
        ups = grid.upstream_of(seed)
        assert len(ups) > 1  # central segment: a real merge
        incident = Incident(segment=seed, start_step=5, duration_steps=4,
                            recovery_steps=2, severity=0.5, kind="accident")
        factor, _ = _graph_incident_masks(grid, [incident], 40, 0.7, 1)
        share = 0.7 / len(ups)
        for up in ups:
            assert factor[up, 6] == pytest.approx(1.0 - share * 0.5)


class TestQueueSpillback:
    def test_jam_spills_upstream_over_time(self):
        """A hard jam on one segment drags its upstream feeders down."""
        graph = grid_city(3, 3, seed=0)
        config = SimulationConfig(num_days=1, seed=5)
        simulator = NetworkSimulator(graph, config)
        free_flow = np.array([s.free_flow_kmh for s in graph.segments])
        steps = 30
        speeds = np.tile(free_flow[:, None], (1, steps)).astype(float)
        jammed = graph.target_index
        speeds[jammed, :] = free_flow[jammed] * (1.0 - SPILL_ONSET - 0.3)
        out = simulator._queue_spillback(speeds.copy(), free_flow)
        ups = graph.upstream_of(jammed)
        for up in ups:
            assert out[up, steps - 1] < free_flow[up]  # queue reached upstream
            # The queue is AR(1): the drag deepens as the jam persists.
            assert out[up, steps - 1] < out[up, 0]
        # The reduction is bounded by the queue cap.
        assert (out >= speeds * (1.0 - QUEUE_MAX) - 1e-9).all()

    def test_free_flow_is_untouched(self):
        graph = grid_city(3, 3, seed=0)
        simulator = NetworkSimulator(graph, SimulationConfig(num_days=1))
        free_flow = np.array([s.free_flow_kmh for s in graph.segments])
        speeds = np.tile(free_flow[:, None], (1, 10)).astype(float)
        out = simulator._queue_spillback(speeds.copy(), free_flow)
        np.testing.assert_array_equal(out, speeds)


# Pinned by test_fingerprint_pin; regenerate with:
#   PYTHONPATH=src python - <<'EOF'
#   import hashlib
#   from repro.network import grid_city, simulate_network
#   from repro.traffic.types import SimulationConfig
#   s = simulate_network(grid_city(3, 3, seed=0), SimulationConfig(num_days=1, seed=2018))
#   print(hashlib.sha256(s.speeds.tobytes()).hexdigest())
#   EOF
FINGERPRINT_3X3_1DAY = "63294e8a0d62c94944441bd879bff417b96a48b85d0361d96770bc902644fb71"
