"""Tests for the tape-replay compile layer (repro.nn.compile).

The contract under test is strict: a trusted replay must be *bitwise*
identical to the eager computation it replaced — outputs, parameter
gradients and input gradients alike — and any construct the tape cannot
reproduce must fall back to eager, never to silently-wrong numbers.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.compile import CompiledFunction

# A trusted replay needs: 1 record call + 1 validate call.
WARMUP_CALLS = 2


def bitwise(a, b):
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def make_mlp(sizes, seed=0, activation=nn.ReLU):
    rng = np.random.default_rng(seed)
    net = nn.Sequential()
    for i in range(len(sizes) - 2):
        net.append(nn.Linear(sizes[i], sizes[i + 1], rng=rng))
        net.append(activation())
    net.append(nn.Linear(sizes[-2], sizes[-1], rng=rng))
    return net


def eager_reference(fn, arrays, grad_indices=()):
    """Run fn eagerly on fresh leaves; return (outputs, input grads, param grads fn)."""
    inputs = [
        nn.Tensor(np.array(a, dtype=np.float64), requires_grad=i in grad_indices)
        for i, a in enumerate(arrays)
    ]
    outputs = fn(*inputs)
    outputs = outputs if isinstance(outputs, tuple) else (outputs,)
    outputs[0].backward()
    return outputs, [t.grad for t in inputs]


class TestReplayBitwise:
    """Replay == eager, bit for bit, across the predictor-style graphs."""

    def fixture_fn(self, kind):
        """A loss function shaped like each predictor family's hot path."""
        rng = np.random.default_rng(7)
        if kind == "F":  # deep fully-connected stack on the flat features
            net = make_mlp([12, 16, 16, 1], seed=1)

            def fn(flat, targets):
                residual = net(flat).reshape(-1) - targets
                return (residual * residual).mean()

            return fn, net, [(rng.normal(size=(6, 12)), rng.normal(size=6))]
        if kind == "C":  # conv2d -> pool -> flatten -> linear
            conv = nn.Conv2d(1, 3, kernel_size=3, rng=np.random.default_rng(2))
            head = nn.Linear(3 * 2 * 2, 1, rng=np.random.default_rng(3))

            def fn(images, targets):
                h = conv(images.reshape(4, 1, 6, 6)).relu()
                h = nn.ops.max_pool2d(h, kernel=2, stride=2)
                out = head(h.reshape(4, -1)).reshape(-1)
                residual = out - targets
                return (residual * residual).mean()

            net = nn.Sequential()
            net.append(conv)
            net.append(head)
            return fn, net, [(rng.normal(size=(4, 6, 6)), rng.normal(size=4))]
        if kind == "L":  # fused LSTM -> linear head on the last timestep
            lstm = nn.LSTM(5, [8], fused=True, rng=np.random.default_rng(4))
            head = nn.Linear(8, 1, rng=np.random.default_rng(5))

            def fn(x, targets):
                seq, _ = lstm(x)
                out = head(seq[:, -1, :]).reshape(-1)
                residual = out - targets
                return (residual * residual).mean()

            net = nn.Sequential()
            net.append(lstm)
            net.append(head)
            return fn, net, [(rng.normal(size=(3, 7, 5)), rng.normal(size=3))]
        raise AssertionError(kind)

    @pytest.mark.parametrize("kind", ["F", "C", "L"])
    def test_losses_and_grads_bitwise_equal(self, kind):
        fn, net, cases = self.fixture_fn(kind)
        cf = CompiledFunction(fn, grad_indices=(0,), name=f"test_{kind}")
        for arrays in cases:
            for call in range(WARMUP_CALLS + 3):
                for p in net.parameters():
                    p.grad = None
                run = cf(*arrays)
                run.backward()
                replay_param_grads = [np.array(p.grad, copy=True) for p in net.parameters()]
                replay_input_grad = np.array(run.input_grad(0), copy=True)
                replay_loss = np.array(run.outputs[0].data, copy=True)

                for p in net.parameters():
                    p.grad = None
                _, eager_input_grads = eager_reference(fn, arrays, grad_indices=(0,))
                eager_param_grads = [np.array(p.grad, copy=True) for p in net.parameters()]

                assert bitwise(replay_loss, fn(
                    nn.Tensor(np.array(arrays[0])), nn.Tensor(np.array(arrays[1]))
                ).data)
                assert bitwise(replay_input_grad, eager_input_grads[0])
                for rg, eg in zip(replay_param_grads, eager_param_grads):
                    assert bitwise(rg, eg)
        assert all(state == "trusted" for state in cf.states().values())
        assert cf.stats["replay"] >= 3

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_shapes_gradcheck(self, seed):
        """Property sweep: random layer widths, replay grads match eager
        bitwise and pass a numeric finite-difference check."""
        rng = np.random.default_rng(100 + seed)
        in_dim = int(rng.integers(3, 9))
        hidden = int(rng.integers(4, 12))
        batch = int(rng.integers(2, 7))
        net = make_mlp([in_dim, hidden, 1], seed=200 + seed, activation=nn.Tanh)

        def fn(x, targets):
            residual = net(x).reshape(-1) - targets
            return (residual * residual).sum()

        arrays = (rng.normal(size=(batch, in_dim)), rng.normal(size=batch))
        cf = CompiledFunction(fn, grad_indices=(0,), name="prop")
        for _ in range(WARMUP_CALLS + 1):
            for p in net.parameters():
                p.grad = None
            run = cf(*arrays)
            run.backward()
        assert run.mode == "replay"
        replay_grad = np.array(run.input_grad(0), copy=True)

        # Bitwise vs eager.
        for p in net.parameters():
            p.grad = None
        _, eager_grads = eager_reference(fn, arrays, grad_indices=(0,))
        assert bitwise(replay_grad, eager_grads[0])

        # Numeric: central finite differences on the input leaf.
        def value_at(x):
            with nn.no_grad():
                out = fn(nn.Tensor(x), nn.Tensor(np.array(arrays[1])))
            return float(out.data)

        eps = 1e-6
        base = np.array(arrays[0], dtype=np.float64)
        flat_grad = replay_grad.reshape(-1)
        for idx in rng.choice(base.size, size=min(6, base.size), replace=False):
            probe = base.copy().reshape(-1)
            probe[idx] += eps
            up = value_at(probe.reshape(base.shape))
            probe[idx] -= 2 * eps
            down = value_at(probe.reshape(base.shape))
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - flat_grad[idx]) < 1e-4 * max(1.0, abs(numeric))


class TestAccumulationSemantics:
    """Repeated backward() accumulates grads identically in both engines."""

    def _grads_after_double_backward(self, compiled: bool):
        net = make_mlp([4, 5, 1], seed=11)

        def fn(x):
            return net(x).sum()

        arrays = (np.linspace(-1.0, 1.0, 12).reshape(3, 4),)
        cf = CompiledFunction(fn, grad_indices=(0,), name="accum")
        if compiled:
            for _ in range(WARMUP_CALLS):
                for p in net.parameters():
                    p.grad = None
                cf(*arrays).backward()
            for p in net.parameters():
                p.grad = None
            run = cf(*arrays)
            assert run.mode == "replay"
            run.backward()
            run.backward()
            return (
                np.array(run.input_grad(0), copy=True),
                [np.array(p.grad, copy=True) for p in net.parameters()],
            )
        x = nn.Tensor(arrays[0], requires_grad=True)
        out = fn(x)
        out.backward()
        out.backward()
        return np.array(x.grad, copy=True), [np.array(p.grad, copy=True) for p in net.parameters()]

    def test_double_backward_doubles_grads_in_both_engines(self):
        eager_input, eager_params = self._grads_after_double_backward(compiled=False)
        replay_input, replay_params = self._grads_after_double_backward(compiled=True)
        assert bitwise(eager_input, replay_input)
        for eg, rg in zip(eager_params, replay_params):
            assert bitwise(eg, rg)
        # And it genuinely accumulated: one backward gives half.
        x = nn.Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4), requires_grad=True)
        net = make_mlp([4, 5, 1], seed=11)
        net(x).sum().backward()
        np.testing.assert_allclose(eager_input, 2.0 * x.grad)

    def test_replay_resets_input_leaf_grad_between_runs(self):
        """tape.forward() gives each run a fresh input leaf: grads do not
        leak from one call of the compiled function into the next."""
        def fn(x):
            return (x * x).sum()

        cf = CompiledFunction(fn, grad_indices=(0,), name="fresh")
        arrays = (np.arange(4.0),)
        grads = []
        for _ in range(WARMUP_CALLS + 2):
            run = cf(*arrays)
            run.backward()
            grads.append(np.array(run.input_grad(0), copy=True))
        assert all(bitwise(g, grads[0]) for g in grads[1:])


class TestFallbacks:
    """Anything the tape cannot faithfully replay must run eager."""

    def test_softmax_is_rejected_not_misreplayed(self):
        # softmax's backward closes over an untraced shift constant; the
        # validation pass must catch the stale value and reject the tape.
        w = nn.Tensor(np.random.default_rng(0).normal(size=(4, 4)), requires_grad=True)

        def fn(x):
            return nn.ops.softmax((x @ w), axis=1).sum()

        cf = CompiledFunction(fn, grad_indices=(0,), name="softmax")
        rng = np.random.default_rng(1)
        for _ in range(4):
            w.grad = None
            arrays = (rng.normal(size=(3, 4)),)
            run = cf(*arrays)
            run.backward()
            expected, eager_grads = eager_reference(fn, arrays, grad_indices=(0,))
            w.grad = None
            assert bitwise(run.outputs[0].data, expected[0].data)
            assert bitwise(run.input_grad(0), eager_grads[0])
        assert set(cf.states().values()) <= {"rejected", "validating"}
        assert cf.stats["replay"] == 0

    def test_max_over_all_axes_rejected_at_record(self):
        def fn(x):
            return x.max()

        cf = CompiledFunction(fn, grad_indices=(0,), name="max")
        run = cf(np.arange(6.0).reshape(2, 3))
        run.backward()
        assert list(cf.states().values()) == ["rejected"]
        # and the record call itself still produced correct eager output
        assert float(run.outputs[0].data) == 5.0

    def test_new_shape_gets_new_tape(self):
        def fn(x):
            return (x * 2.0).sum()

        cf = CompiledFunction(fn, grad_indices=(0,), name="shapes")
        for n in (3, 5):
            for _ in range(WARMUP_CALLS + 1):
                cf(np.arange(float(n))).backward()
        assert len(cf.states()) == 2
        assert all(state == "trusted" for state in cf.states().values())

    def test_max_tapes_overflow_runs_eager(self):
        def fn(x):
            return x.sum()

        cf = CompiledFunction(fn, grad_indices=(0,), name="overflow", max_tapes=2)
        for n in range(1, 6):
            run = cf(np.ones(n))
            assert float(run.outputs[0].data) == float(n)
        assert len(cf.states()) == 2
        assert cf.stats["eager"] == 3

    def test_no_grad_falls_back_to_eager(self):
        def fn(x):
            return x.sum()

        cf = CompiledFunction(fn, name="nograd", forward_only=True)
        with nn.no_grad():
            run = cf(np.ones(3))
        assert run.mode == "eager"
        assert cf.states() == {}

    def test_nested_recording_does_not_corrupt_outer_tape(self):
        inner = CompiledFunction(lambda x: (x * 3.0).sum(), grad_indices=(0,), name="inner")

        def outer_fn(x):
            run = inner(x.data)  # inner sees a raw array, runs eagerly
            return x.sum() + float(run.outputs[0].data)

        outer = CompiledFunction(outer_fn, grad_indices=(0,), name="outer")
        for _ in range(WARMUP_CALLS + 1):
            run = outer(np.arange(3.0))
            run.backward()
        # While outer was *recording*, inner had to run plain eager (a
        # nested record would have spliced its ops into outer's tape).
        assert inner.stats["eager"] >= 1
        assert inner.stats["record"] <= inner.stats["eager"]
        assert outer.states() == {((3,),): "trusted"}
        assert bitwise(run.input_grad(0), np.ones(3))


class TestValueNodeRefresh:
    """Ops with no grad-requiring parents still refresh on replay.

    Regression test for the conditional-discriminator bug: the concat
    of a detached prediction with a static condition has no tape of its
    own, but its output buffer feeds grad-requiring ops downstream and
    must be recomputed from the *current* inputs on every replay.
    """

    def test_concat_of_non_grad_inputs_refreshes(self):
        w = nn.Tensor(np.random.default_rng(0).normal(size=(6, 1)), requires_grad=True)

        def fn(a, b):
            joined = nn.ops.concat([a, b], axis=1)  # value node: no grad parents
            return (joined @ w).sum()

        cf = CompiledFunction(fn, name="valuenode")
        rng = np.random.default_rng(2)
        outputs = []
        for _ in range(WARMUP_CALLS + 2):
            a, b = rng.normal(size=(2, 4)), rng.normal(size=(2, 2))
            run = cf(a, b)
            run.backward()
            expected = float(np.sum(np.concatenate([a, b], axis=1) @ w.data))
            outputs.append((float(run.outputs[0].data), expected, run.mode))
        assert outputs[-1][2] == "replay"
        for got, expected, _ in outputs:
            assert got == pytest.approx(expected, rel=0, abs=1e-12)
        # distinct inputs produced distinct outputs (no stale buffer)
        assert len({got for got, _, _ in outputs}) == len(outputs)


class TestForwardOnly:
    def test_promotes_after_two_clean_passes_and_refuses_backward(self):
        net = make_mlp([3, 4, 1], seed=21)

        def fn(x):
            return net(x).reshape(-1)

        cf = CompiledFunction(fn, name="fwd", forward_only=True)
        arrays = (np.linspace(0.0, 1.0, 6).reshape(2, 3),)
        modes = [cf(*arrays).mode for _ in range(4)]
        assert modes[0] == "record"
        assert "replay" in modes
        run = cf(*arrays)
        with pytest.raises(RuntimeError, match="forward-only"):
            run.backward()
        with nn.no_grad():
            expected = net(nn.Tensor(arrays[0])).reshape(-1).data
        assert bitwise(run.outputs[0].data, expected)


class TestInputGradsOnly:
    """Pruned tapes: input grads bitwise, param grads untouched on replay."""

    def make_cf(self, input_grads_only):
        net = make_mlp([6, 8, 8, 1], seed=33)

        def fn(x, targets):
            residual = net(x).reshape(-1) - targets
            return (residual * residual).sum()

        return net, CompiledFunction(
            fn, grad_indices=(0,), name="pruned",
            input_grads_only=input_grads_only,
        ), fn

    def test_input_grads_bitwise_match_unpruned_replay(self):
        rng = np.random.default_rng(11)
        arrays = (rng.normal(size=(5, 6)), rng.normal(size=5))
        grads = {}
        for pruned in (False, True):
            net, cf, fn = self.make_cf(pruned)
            for _ in range(WARMUP_CALLS + 2):
                for p in net.parameters():
                    p.grad = None
                run = cf(*arrays)
                run.backward()
            assert all(state == "trusted" for state in cf.states().values())
            assert run.mode == "replay"
            grads[pruned] = np.array(run.input_grad(0), copy=True)
        assert bitwise(grads[False], grads[True])

    def test_trusted_replay_leaves_param_grad_alone(self):
        rng = np.random.default_rng(12)
        arrays = (rng.normal(size=(4, 6)), rng.normal(size=4))
        net, cf, fn = self.make_cf(True)
        for _ in range(WARMUP_CALLS):
            for p in net.parameters():
                p.grad = None
            run = cf(*arrays)
            run.backward()
        # Trusted now: a replay backward must not refresh param.grad …
        for p in net.parameters():
            p.grad = None
        run = cf(*arrays)
        assert run.mode == "replay"
        run.backward()
        assert all(p.grad is None for p in net.parameters())
        assert run.input_grad(0) is not None
        # … while the eager reference still owns full training gradients.
        for p in net.parameters():
            p.grad = None
        eager_reference(fn, arrays, grad_indices=(0,))
        assert all(p.grad is not None for p in net.parameters())
