"""Tests for the fused LSTM primitive: equivalence with the cell path."""

import numpy as np
import pytest

from repro import nn
from repro.nn.fused_rnn import lstm_layer_forward


def make_pair(input_size=5, hidden=(7, 6), seed=3):
    """Two LSTMs with identical weights, one fused and one unrolled."""
    fused = nn.LSTM(input_size, list(hidden), fused=True, rng=np.random.default_rng(seed))
    slow = nn.LSTM(input_size, list(hidden), fused=False, rng=np.random.default_rng(seed))
    return fused, slow


class TestEquivalence:
    def test_forward_matches_cell_path(self):
        fused, slow = make_pair()
        x = np.random.default_rng(0).normal(size=(4, 9, 5))
        out_fused, state_fused = fused(nn.Tensor(x))
        out_slow, state_slow = slow(nn.Tensor(x))
        np.testing.assert_allclose(out_fused.data, out_slow.data, atol=1e-12)
        for (hf, cf), (hs, cs) in zip(state_fused, state_slow):
            np.testing.assert_allclose(hf.data, hs.data, atol=1e-12)
            np.testing.assert_allclose(cf.data, cs.data, atol=1e-12)

    def test_gradients_match_cell_path(self):
        fused, slow = make_pair()
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 6, 5))
        grad_seed = rng.normal(size=(3, 6, 6))
        x_fused = nn.Tensor(data.copy(), requires_grad=True)
        x_slow = nn.Tensor(data.copy(), requires_grad=True)
        (fused(x_fused)[0] * nn.Tensor(grad_seed)).sum().backward()
        (slow(x_slow)[0] * nn.Tensor(grad_seed)).sum().backward()
        np.testing.assert_allclose(x_fused.grad, x_slow.grad, atol=1e-10)
        for (name, p_fused), (_, p_slow) in zip(
            fused.named_parameters(), slow.named_parameters()
        ):
            np.testing.assert_allclose(p_fused.grad, p_slow.grad, atol=1e-10, err_msg=name)

    def test_gradcheck_against_finite_differences(self):
        rng = np.random.default_rng(2)
        lstm = nn.LSTM(2, [2], fused=True, rng=rng)
        x = nn.Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)

        def forward():
            out, _ = lstm(x)
            return (out * out).sum()

        nn.check_gradients(forward, [x] + lstm.parameters(), atol=1e-3, rtol=1e-3)

    def test_initial_state_respected(self):
        fused, slow = make_pair(hidden=(4,))
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 5, 5))
        h0 = nn.Tensor(rng.normal(size=(2, 4)))
        c0 = nn.Tensor(rng.normal(size=(2, 4)))
        out_fused, _ = fused(nn.Tensor(x), [(h0, c0)])
        out_slow, _ = slow(nn.Tensor(x), [(h0, c0)])
        np.testing.assert_allclose(out_fused.data, out_slow.data, atol=1e-12)


class TestPrimitiveValidation:
    def _params(self, hidden=3, input_size=2, seed=0):
        cell = nn.LSTMCell(input_size, hidden, rng=np.random.default_rng(seed))
        return cell.weight_ih, cell.weight_hh, cell.bias

    def test_rejects_2d_input(self):
        w_ih, w_hh, b = self._params()
        with pytest.raises(ValueError, match="batch, time, features"):
            lstm_layer_forward(nn.Tensor(np.ones((4, 2))), w_ih, w_hh, b)

    def test_rejects_inconsistent_gate_shapes(self):
        w_ih, w_hh, _ = self._params()
        bad_bias = nn.Tensor(np.zeros(5))
        with pytest.raises(ValueError, match="inconsistent"):
            lstm_layer_forward(nn.Tensor(np.ones((1, 2, 2))), w_ih, w_hh, bad_bias)

    def test_rejects_requires_grad_initial_state(self):
        # The fused backward returns no gradient for h0/c0; a
        # differentiable state would silently drop out of BPTT.
        w_ih, w_hh, b = self._params()
        x = nn.Tensor(np.ones((2, 4, 2)))
        grad_state = nn.Tensor(np.zeros((2, 3)), requires_grad=True)
        with pytest.raises(ValueError, match="requires_grad Tensor as h0"):
            lstm_layer_forward(x, w_ih, w_hh, b, h0=grad_state)
        with pytest.raises(ValueError, match="requires_grad Tensor as c0"):
            lstm_layer_forward(x, w_ih, w_hh, b, c0=grad_state)

    def test_returns_final_state_values(self):
        w_ih, w_hh, b = self._params()
        x = nn.Tensor(np.random.default_rng(4).normal(size=(2, 4, 2)))
        out, h_final, c_final = lstm_layer_forward(x, w_ih, w_hh, b)
        np.testing.assert_allclose(out.data[:, -1, :], h_final)
        assert c_final.shape == (2, 3)

    def test_single_step_matches_cell(self):
        cell = nn.LSTMCell(2, 3, rng=np.random.default_rng(5))
        x = np.random.default_rng(6).normal(size=(2, 1, 2))
        out, h_final, c_final = lstm_layer_forward(
            nn.Tensor(x), cell.weight_ih, cell.weight_hh, cell.bias
        )
        h_ref, c_ref = cell(nn.Tensor(x[:, 0]), cell.initial_state(2))
        np.testing.assert_allclose(h_final, h_ref.data, atol=1e-12)
        np.testing.assert_allclose(c_final, c_ref.data, atol=1e-12)
