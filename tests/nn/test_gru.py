"""Tests for the GRU layers."""

import numpy as np
import pytest

from repro import nn


class TestGRUCell:
    def test_state_shape(self):
        cell = nn.GRUCell(4, 6, rng=np.random.default_rng(0))
        h = cell.initial_state(3)
        h2 = cell(nn.Tensor(np.ones((3, 4))), h)
        assert h2.shape == (3, 6)

    def test_hidden_bounded(self):
        cell = nn.GRUCell(4, 6, rng=np.random.default_rng(1))
        h = cell.initial_state(2)
        x = nn.Tensor(np.random.default_rng(2).normal(size=(2, 4)) * 10)
        h = cell(x, h)
        assert np.all(np.abs(h.data) <= 1.0)

    def test_update_gate_interpolates(self):
        """With z == 1 the state is carried over unchanged."""
        cell = nn.GRUCell(2, 3, rng=np.random.default_rng(3))
        # Force the update gate to saturate at 1 via its biases.
        cell.bias_ih.data[3:6] = 50.0
        previous = nn.Tensor(np.random.default_rng(4).normal(size=(2, 3)))
        out = cell(nn.Tensor(np.zeros((2, 2))), previous)
        np.testing.assert_allclose(out.data, previous.data, atol=1e-6)

    def test_gradcheck(self):
        rng = np.random.default_rng(5)
        cell = nn.GRUCell(3, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h0 = nn.Tensor(rng.normal(size=(2, 2)), requires_grad=True)

        def forward():
            return (cell(x, h0) ** 2).sum()

        nn.check_gradients(forward, [x, h0] + cell.parameters(), atol=1e-3, rtol=1e-3)


class TestGRU:
    def test_output_shapes(self):
        gru = nn.GRU(5, [8, 6], rng=np.random.default_rng(6))
        out, state = gru(nn.Tensor(np.ones((3, 7, 5))))
        assert out.shape == (3, 7, 6)
        assert state[0].shape == (3, 8)
        assert state[1].shape == (3, 6)

    def test_final_state_matches_last_output(self):
        gru = nn.GRU(3, [5], rng=np.random.default_rng(7))
        out, state = gru(nn.Tensor(np.random.default_rng(8).normal(size=(2, 4, 3))))
        np.testing.assert_allclose(out.data[:, -1, :], state[0].data)

    def test_rejects_2d_input(self):
        gru = nn.GRU(3, [4], rng=np.random.default_rng(9))
        with pytest.raises(ValueError):
            gru(nn.Tensor(np.ones((2, 3))))

    def test_hidden_layers_mismatch(self):
        with pytest.raises(ValueError):
            nn.GRU(3, [4, 4], num_layers=3)

    def test_state_threading(self):
        rng = np.random.default_rng(10)
        gru = nn.GRU(3, [4], rng=rng)
        x = rng.normal(size=(2, 6, 3))
        full, _ = gru(nn.Tensor(x))
        first, state = gru(nn.Tensor(x[:, :3]))
        second, _ = gru(nn.Tensor(x[:, 3:]), state)
        np.testing.assert_allclose(full.data[:, 3:], second.data, atol=1e-12)

    def test_backward_through_time(self):
        rng = np.random.default_rng(11)
        gru = nn.GRU(3, [4], rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
        out, _ = gru(x)
        (out * out).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[:, 0]).max() > 0

    def test_learns_sequence_mean(self):
        """The GRU substrate can actually be trained."""
        rng = np.random.default_rng(12)
        x = rng.normal(size=(128, 5, 1))
        y = x.mean(axis=(1, 2))
        gru = nn.GRU(1, [8], rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        params = gru.parameters() + head.parameters()
        opt = nn.Adam(params, lr=0.02)
        loss_fn = nn.MSELoss()
        first = None
        for _ in range(150):
            opt.zero_grad()
            out, _ = gru(nn.Tensor(x))
            pred = head(out[:, -1, :]).reshape(-1)
            loss = loss_fn(pred, y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.3
