"""Tests for layers: Linear, activations, dropout, normalisation, conv."""

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(4, 7, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_known_weights(self):
        layer = nn.Linear(2, 1, rng=np.random.default_rng(0))
        layer.weight.data[:] = [[2.0, 3.0]]
        layer.bias.data[:] = [1.0]
        out = layer(nn.Tensor([[1.0, 1.0]]))
        np.testing.assert_allclose(out.data, [[6.0]])

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        layer = nn.Linear(3, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        nn.check_gradients(
            lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias]
        )

    def test_repr(self):
        assert "Linear(3, 2" in repr(nn.Linear(3, 2))


class TestActivationLayers:
    @pytest.mark.parametrize(
        "layer,expected",
        [
            (nn.ReLU(), [0.0, 0.0, 2.0]),
            (nn.Tanh(), list(np.tanh([-1.0, 0.0, 2.0]))),
            (nn.Sigmoid(), list(1 / (1 + np.exp(-np.array([-1.0, 0.0, 2.0]))))),
            (nn.LeakyReLU(0.1), [-0.1, 0.0, 2.0]),
        ],
    )
    def test_forward_values(self, layer, expected):
        out = layer(nn.Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_elu(self):
        out = nn.ELU(alpha=1.0)(nn.Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [np.expm1(-1.0), 2.0], atol=1e-12)

    def test_elu_gradcheck(self):
        x = nn.Tensor([-0.5, 0.5, 1.5], requires_grad=True)
        nn.check_gradients(lambda: (nn.ELU()(x) ** 2).sum(), [x])

    def test_activations_have_no_parameters(self):
        for layer in (nn.ReLU(), nn.Tanh(), nn.Sigmoid(), nn.LeakyReLU()):
            assert layer.parameters() == []


class TestDropout:
    def test_eval_is_identity(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = nn.Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_zero_p_is_identity_in_train(self):
        layer = nn.Dropout(0.0)
        x = nn.Tensor(np.ones(100))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_training_zeroes_and_scales(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones(10000))).data
        assert set(np.unique(out)).issubset({0.0, 2.0})
        # Mean preserved in expectation (inverted dropout).
        assert abs(out.mean() - 1.0) < 0.1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_gradient_masked(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(1))
        x = nn.Tensor(np.ones(1000), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        zero_out = out.data == 0.0
        np.testing.assert_allclose(x.grad[zero_out], 0.0)
        np.testing.assert_allclose(x.grad[~zero_out], 2.0)


class TestBatchNorm1d:
    def test_normalises_in_training(self):
        layer = nn.BatchNorm1d(3)
        rng = np.random.default_rng(2)
        x = nn.Tensor(rng.normal(5.0, 3.0, size=(64, 3)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        layer = nn.BatchNorm1d(2, momentum=1.0)
        x = nn.Tensor(np.array([[1.0, 10.0], [3.0, 30.0]]))
        layer(x)
        np.testing.assert_allclose(layer.running_mean, [2.0, 20.0])

    def test_eval_uses_running_stats(self):
        layer = nn.BatchNorm1d(1, momentum=1.0)
        layer(nn.Tensor(np.array([[0.0], [2.0]])))  # mean 1, var 1
        layer.eval()
        out = layer(nn.Tensor(np.array([[1.0]])))
        np.testing.assert_allclose(out.data, [[0.0]], atol=1e-2)

    def test_3d_input(self):
        layer = nn.BatchNorm1d(4)
        out = layer(nn.Tensor(np.random.default_rng(3).normal(size=(2, 4, 5))))
        assert out.shape == (2, 4, 5)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(4)(nn.Tensor(np.ones((2, 4, 5, 6))))

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        layer = nn.BatchNorm1d(3)
        x = nn.Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        nn.check_gradients(
            lambda: (layer(x) * layer(x)).mean(),
            [x, layer.weight, layer.bias],
            atol=1e-3,
            rtol=1e-3,
        )


class TestBatchNorm2d:
    def test_shape_and_normalisation(self):
        layer = nn.BatchNorm2d(3)
        x = nn.Tensor(np.random.default_rng(5).normal(2.0, 4.0, size=(4, 3, 5, 5)))
        out = layer(x).data
        assert out.shape == (4, 3, 5, 5)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(nn.Tensor(np.ones((4, 3))))


class TestLayerNorm:
    def test_normalises_last_axis(self):
        layer = nn.LayerNorm(8)
        x = nn.Tensor(np.random.default_rng(6).normal(3.0, 2.0, size=(4, 8)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)

    def test_gradcheck(self):
        rng = np.random.default_rng(7)
        layer = nn.LayerNorm(4)
        x = nn.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        nn.check_gradients(
            lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias], atol=1e-3, rtol=1e-3
        )


class TestConvLayer:
    def test_output_shape_helper(self):
        conv = nn.Conv2d(1, 4, 3, padding=1, rng=np.random.default_rng(8))
        assert conv.output_shape(9, 12) == (9, 12)
        conv2 = nn.Conv2d(1, 4, 3, stride=2, rng=np.random.default_rng(8))
        assert conv2.output_shape(9, 9) == (4, 4)

    def test_forward_shape(self):
        conv = nn.Conv2d(2, 5, (3, 1), padding=(1, 0), rng=np.random.default_rng(9))
        out = conv(nn.Tensor(np.ones((3, 2, 7, 4))))
        assert out.shape == (3, 5, 7, 4)

    def test_flatten(self):
        out = nn.Flatten()(nn.Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_pool_layers(self):
        x = nn.Tensor(np.ones((1, 1, 4, 4)))
        assert nn.MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 1, 2, 2)


class TestContainers:
    def test_sequential_runs_in_order(self):
        rng = np.random.default_rng(10)
        net = nn.Sequential(nn.Linear(3, 5, rng=rng), nn.ReLU(), nn.Linear(5, 2, rng=rng))
        out = net(nn.Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)
        assert len(net) == 3

    def test_sequential_append_and_index(self):
        net = nn.Sequential()
        layer = nn.ReLU()
        net.append(layer)
        assert net[0] is layer
        assert list(net) == [layer]

    def test_sequential_registers_parameters(self):
        rng = np.random.default_rng(11)
        net = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.Linear(2, 2, rng=rng))
        assert len(net.parameters()) == 4

    def test_module_list(self):
        rng = np.random.default_rng(12)
        modules = nn.ModuleList([nn.Linear(2, 2, rng=rng)])
        modules.append(nn.Linear(2, 3, rng=rng))
        assert len(modules) == 2
        assert len(modules.parameters()) == 4
        assert modules[1].out_features == 3

    def test_module_list_forward_raises(self):
        with pytest.raises(NotImplementedError):
            nn.ModuleList([])(nn.Tensor([1.0]))
