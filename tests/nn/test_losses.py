"""Tests for loss functions."""

import numpy as np
import pytest

from repro import nn


class TestMSELoss:
    def test_value(self):
        loss = nn.MSELoss()(nn.Tensor([1.0, 2.0]), np.array([3.0, 2.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_sum_reduction(self):
        loss = nn.MSELoss(reduction="sum")(nn.Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_none_reduction(self):
        loss = nn.MSELoss(reduction="none")(nn.Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.data, [1.0, 4.0])

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            nn.MSELoss(reduction="bogus")

    def test_gradient(self):
        x = nn.Tensor([3.0], requires_grad=True)
        nn.MSELoss()(x, np.array([1.0])).backward()
        np.testing.assert_allclose(x.grad, [4.0])  # 2 * (3 - 1)

    def test_target_is_detached(self):
        target = nn.Tensor([1.0], requires_grad=True)
        x = nn.Tensor([3.0], requires_grad=True)
        nn.MSELoss()(x, target).backward()
        assert target.grad is None


class TestL1Loss:
    def test_value(self):
        loss = nn.L1Loss()(nn.Tensor([1.0, -2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_gradient_sign(self):
        x = nn.Tensor([3.0, -3.0], requires_grad=True)
        nn.L1Loss(reduction="sum")(x, np.array([0.0, 0.0])).backward()
        np.testing.assert_allclose(x.grad, [1.0, -1.0])


class TestHuberLoss:
    def test_quadratic_region(self):
        loss = nn.HuberLoss(delta=1.0)(nn.Tensor([0.5]), np.array([0.0]))
        assert loss.item() == pytest.approx(0.125)

    def test_linear_region(self):
        loss = nn.HuberLoss(delta=1.0)(nn.Tensor([3.0]), np.array([0.0]))
        assert loss.item() == pytest.approx(3.0 - 0.5)

    def test_gradcheck(self):
        x = nn.Tensor([0.3, 2.5, -1.7], requires_grad=True)
        nn.check_gradients(lambda: nn.HuberLoss()(x, np.zeros(3)), [x])


class TestBCELoss:
    def test_value(self):
        p = nn.Tensor([0.9, 0.1])
        t = np.array([1.0, 0.0])
        expected = -np.mean([np.log(0.9), np.log(0.9)])
        assert nn.BCELoss()(p, t).item() == pytest.approx(expected)

    def test_clipping_prevents_infinity(self):
        loss = nn.BCELoss()(nn.Tensor([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestBCEWithLogitsLoss:
    def test_matches_bce_on_probabilities(self):
        logits = np.array([-1.5, 0.3, 2.0])
        targets = np.array([0.0, 1.0, 1.0])
        with_logits = nn.BCEWithLogitsLoss()(nn.Tensor(logits), targets).item()
        probs = 1.0 / (1.0 + np.exp(-logits))
        plain = nn.BCELoss()(nn.Tensor(probs), targets).item()
        assert with_logits == pytest.approx(plain, rel=1e-6)

    def test_stable_at_extreme_logits(self):
        loss = nn.BCEWithLogitsLoss()(nn.Tensor([1000.0, -1000.0]), np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(1000.0, rel=1e-6)

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        logits = nn.Tensor(rng.normal(size=8), requires_grad=True)
        targets = (rng.random(8) > 0.5).astype(float)
        nn.check_gradients(lambda: nn.BCEWithLogitsLoss()(logits, targets), [logits])

    def test_gradient_is_sigmoid_minus_target(self):
        logits = nn.Tensor([0.0], requires_grad=True)
        nn.BCEWithLogitsLoss(reduction="sum")(logits, np.array([1.0])).backward()
        np.testing.assert_allclose(logits.grad, [-0.5], atol=1e-10)
