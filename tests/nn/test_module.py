"""Tests for Module / Parameter registration and serialisation."""

import numpy as np
import pytest

from repro import nn


class TwoLayer(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.first = nn.Linear(3, 4, rng=rng)
        self.second = nn.Linear(4, 2, rng=rng)
        self.scale = nn.Parameter(np.array([1.0]))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = TwoLayer(np.random.default_rng(0))
        assert len(model.parameters()) == 5  # 2x(W, b) + scale

    def test_named_parameters_dotted(self):
        model = TwoLayer(np.random.default_rng(0))
        names = {name for name, _ in model.named_parameters()}
        assert names == {"first.weight", "first.bias", "second.weight", "second.bias", "scale"}

    def test_num_parameters(self):
        model = TwoLayer(np.random.default_rng(0))
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_modules_iterates_descendants(self):
        model = TwoLayer(np.random.default_rng(0))
        assert len(list(model.modules())) == 3

    def test_register_module_dynamic(self):
        model = nn.Module()
        child = nn.Linear(2, 2, rng=np.random.default_rng(0))
        model.register_module("child", child)
        assert model.child is child
        assert len(model.parameters()) == 2

    def test_parameter_requires_grad_even_under_no_grad(self):
        with nn.no_grad():
            p = nn.Parameter(np.ones(3))
        assert p.requires_grad


class TestModes:
    def test_train_eval_propagates(self):
        model = TwoLayer(np.random.default_rng(0))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = TwoLayer(np.random.default_rng(0))
        x = nn.Tensor(np.ones((2, 3)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(nn.Tensor([1.0]))


class TestStateDict:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        a = TwoLayer(rng)
        b = TwoLayer(np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = nn.Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_returns_copies(self):
        model = TwoLayer(np.random.default_rng(1))
        state = model.state_dict()
        state["scale"][...] = 99.0
        assert model.scale.data[0] != 99.0

    def test_missing_key_raises(self):
        model = TwoLayer(np.random.default_rng(1))
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = TwoLayer(np.random.default_rng(1))
        state = model.state_dict()
        state["bogus"] = np.ones(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer(np.random.default_rng(1))
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        a = TwoLayer(np.random.default_rng(3))
        b = TwoLayer(np.random.default_rng(4))
        path = tmp_path / "model.npz"
        nn.save_state(a, path)
        nn.load_state(b, path)
        x = nn.Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(5)
        w = nn.init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_kaiming_normal_scale(self):
        rng = np.random.default_rng(6)
        w = nn.init.kaiming_normal((2000, 100), rng)
        assert abs(w.std() - np.sqrt(2.0 / 100)) < 0.01

    def test_conv_fan_accounts_for_receptive_field(self):
        rng = np.random.default_rng(7)
        w = nn.init.kaiming_uniform((8, 4, 3, 3), rng)
        bound = np.sqrt(6.0 / (4 * 9))
        assert np.all(np.abs(w) <= bound)

    def test_orthogonal_is_orthogonal(self):
        rng = np.random.default_rng(8)
        w = nn.init.orthogonal((6, 6), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(6), atol=1e-10)

    def test_orthogonal_rejects_1d(self):
        with pytest.raises(ValueError):
            nn.init.orthogonal((5,), np.random.default_rng(9))

    def test_zeros(self):
        np.testing.assert_allclose(nn.init.zeros((3, 3)), 0.0)
