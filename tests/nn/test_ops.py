"""Tests for structural ops: concat, stack, pad, where, softmax, pooling."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops


class TestConcat:
    def test_forward(self):
        a, b = nn.Tensor([1.0, 2.0]), nn.Tensor([3.0])
        np.testing.assert_allclose(ops.concat([a, b]).data, [1.0, 2.0, 3.0])

    def test_axis1(self):
        a = nn.Tensor(np.ones((2, 2)))
        b = nn.Tensor(np.zeros((2, 3)))
        assert ops.concat([a, b], axis=1).shape == (2, 5)

    def test_gradient_splits(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([3.0], requires_grad=True)
        out = ops.concat([a, b])
        (out * nn.Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        a = nn.Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = nn.Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        nn.check_gradients(lambda: (ops.concat([a, b], axis=1) ** 2).sum(), [a, b])


class TestStack:
    def test_forward_shape(self):
        tensors = [nn.Tensor(np.ones(3)) for _ in range(4)]
        assert ops.stack(tensors).shape == (4, 3)
        assert ops.stack(tensors, axis=1).shape == (3, 4)

    def test_gradient(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([3.0, 4.0], requires_grad=True)
        out = ops.stack([a, b], axis=0)
        (out * nn.Tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [2.0, 2.0])

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        tensors = [nn.Tensor(rng.normal(size=3), requires_grad=True) for _ in range(3)]
        nn.check_gradients(lambda: (ops.stack(tensors, axis=1) ** 2).sum(), tensors)


class TestPad2d:
    def test_forward_shape(self):
        x = nn.Tensor(np.ones((1, 1, 3, 3)))
        assert ops.pad2d(x, 1).shape == (1, 1, 5, 5)
        assert ops.pad2d(x, (1, 2)).shape == (1, 1, 5, 7)

    def test_zero_padding_is_identity(self):
        x = nn.Tensor(np.ones((1, 1, 3, 3)))
        assert ops.pad2d(x, 0) is x

    def test_gradient_strips_padding(self):
        x = nn.Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        ops.pad2d(x, 1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        x = nn.Tensor(rng.normal(size=(2, 1, 3, 4)), requires_grad=True)
        nn.check_gradients(lambda: (ops.pad2d(x, (1, 2)) ** 2).sum(), [x])


class TestWhereMaximum:
    def test_where_selects(self):
        cond = np.array([True, False])
        out = ops.where(cond, nn.Tensor([1.0, 1.0]), nn.Tensor([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_where_gradient_routes(self):
        cond = np.array([True, False])
        a = nn.Tensor([1.0, 1.0], requires_grad=True)
        b = nn.Tensor([2.0, 2.0], requires_grad=True)
        ops.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_maximum_forward_and_grad(self):
        a = nn.Tensor([1.0, 5.0], requires_grad=True)
        b = nn.Tensor([3.0, 2.0], requires_grad=True)
        out = ops.maximum(a, b)
        np.testing.assert_allclose(out.data, [3.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_maximum_tie_goes_to_first(self):
        a = nn.Tensor([2.0], requires_grad=True)
        b = nn.Tensor([2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [0.0])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = nn.Tensor(np.random.default_rng(3).normal(size=(4, 5)))
        out = ops.softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_stable_with_large_values(self):
        out = ops.softmax(nn.Tensor([1000.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_log_softmax_matches_log_of_softmax(self):
        x = nn.Tensor(np.random.default_rng(4).normal(size=(3, 4)))
        np.testing.assert_allclose(
            ops.log_softmax(x, axis=1).data, np.log(ops.softmax(x, axis=1).data), atol=1e-10
        )

    def test_softmax_gradcheck(self):
        x = nn.Tensor(np.random.default_rng(5).normal(size=(2, 3)), requires_grad=True)
        weights = np.random.default_rng(6).normal(size=(2, 3))
        nn.check_gradients(lambda: (ops.softmax(x, axis=1) * nn.Tensor(weights)).sum(), [x])


class TestConv2d:
    @staticmethod
    def _naive_conv(x, w, b, stride=1):
        n, c_in, h, wd = x.shape
        c_out, _, kh, kw = w.shape
        oh = (h - kh) // stride + 1
        ow = (wd - kw) // stride + 1
        out = np.zeros((n, c_out, oh, ow))
        for ni in range(n):
            for co in range(c_out):
                for i in range(oh):
                    for j in range(ow):
                        patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                        out[ni, co, i, j] = (patch * w[co]).sum() + b[co]
        return out

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 6, 5))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = ops.conv2d(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b))
        np.testing.assert_allclose(out.data, self._naive_conv(x, w, b), atol=1e-10)

    def test_stride_matches_naive(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(1, 2, 7, 7))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out = ops.conv2d(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b), stride=2)
        np.testing.assert_allclose(out.data, self._naive_conv(x, w, b, stride=2), atol=1e-10)

    def test_padding_preserves_shape(self):
        x = nn.Tensor(np.ones((1, 1, 5, 5)))
        w = nn.Tensor(np.ones((1, 1, 3, 3)))
        assert ops.conv2d(x, w, padding=1).shape == (1, 1, 5, 5)

    def test_no_bias(self):
        x = nn.Tensor(np.ones((1, 1, 3, 3)))
        w = nn.Tensor(np.ones((1, 1, 3, 3)))
        np.testing.assert_allclose(ops.conv2d(x, w).data, [[[[9.0]]]])

    def test_channel_mismatch_raises(self):
        x = nn.Tensor(np.ones((1, 2, 3, 3)))
        w = nn.Tensor(np.ones((1, 3, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            ops.conv2d(x, w)

    def test_gradcheck_with_padding_and_stride(self):
        rng = np.random.default_rng(9)
        x = nn.Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = nn.Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = nn.Tensor(rng.normal(size=3), requires_grad=True)
        nn.check_gradients(
            lambda: (ops.conv2d(x, w, b, stride=2, padding=1) ** 2).sum(), [x, w, b]
        )


class TestPooling:
    def test_max_pool_forward(self):
        x = nn.Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = ops.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradient_to_argmax(self):
        x = nn.Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        ops.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_forward(self):
        x = nn.Tensor(np.ones((1, 1, 4, 4)) * 8.0)
        np.testing.assert_allclose(ops.avg_pool2d(x, 2).data, np.full((1, 1, 2, 2), 8.0))

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(10)
        x = nn.Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        nn.check_gradients(lambda: (ops.avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_max_pool_gradcheck(self):
        rng = np.random.default_rng(11)
        # Distinct values so the argmax is stable under the FD epsilon.
        data = rng.permutation(32).astype(np.float64).reshape(1, 2, 4, 4)
        x = nn.Tensor(data, requires_grad=True)
        nn.check_gradients(lambda: (ops.max_pool2d(x, 2) ** 2).sum(), [x])


class TestIm2Col:
    def test_roundtrip_count(self):
        # col2im(ones) counts how many patches cover each pixel.
        x_shape = (1, 1, 4, 4)
        cols = np.ones((1, 1 * 2 * 2, 9))  # 3x3 output for 2x2 kernel stride 1
        counts = ops.col2im(cols, x_shape, (2, 2), (1, 1))
        expected = np.array(
            [
                [1.0, 2.0, 2.0, 1.0],
                [2.0, 4.0, 4.0, 2.0],
                [2.0, 4.0, 4.0, 2.0],
                [1.0, 2.0, 2.0, 1.0],
            ]
        )
        np.testing.assert_allclose(counts[0, 0], expected)

    def test_im2col_shapes(self):
        x = np.zeros((2, 3, 5, 6))
        cols, oh, ow = ops.im2col(x, (3, 3), (1, 1))
        assert cols.shape == (2, 27, 12)
        assert (oh, ow) == (3, 4)
