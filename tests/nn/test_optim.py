"""Tests for optimisers, gradient clipping and LR schedulers."""

import numpy as np
import pytest

from repro import nn


def quadratic_param(start=5.0):
    """A single parameter with loss (p - 2)^2 whose optimum is 2."""
    return nn.Parameter(np.array([start]))


def loss_of(param):
    diff = param - nn.Tensor([2.0])
    return (diff * diff).sum()


class TestSGD:
    def test_plain_step_math(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = nn.Parameter(np.array([0.0]))
        opt = nn.SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v = 1, p = -1
        p.grad = np.array([1.0])
        opt.step()  # v = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 5.0])

    def test_skips_none_grads(self):
        p = nn.Parameter(np.array([1.0]))
        nn.SGD([p], lr=0.1).step()  # no grad set: must not crash
        np.testing.assert_allclose(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-4)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr regardless of
        # gradient magnitude.
        p = nn.Parameter(np.array([0.0]))
        opt = nn.Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-3)

    def test_weight_decay_changes_update(self):
        p1 = nn.Parameter(np.array([5.0]))
        p2 = nn.Parameter(np.array([5.0]))
        o1 = nn.Adam([p1], lr=0.1)
        o2 = nn.Adam([p2], lr=0.1, weight_decay=1.0)
        for p, o in ((p1, o1), (p2, o2)):
            p.grad = np.array([0.1])
            o.step()
        assert p2.data[0] < p1.data[0]

    def test_trains_small_network(self):
        rng = np.random.default_rng(0)
        net = nn.Sequential(nn.Linear(2, 8, rng=rng), nn.Tanh(), nn.Linear(8, 1, rng=rng))
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5)
        opt = nn.Adam(net.parameters(), lr=0.01)
        loss_fn = nn.MSELoss()
        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = loss_fn(net(nn.Tensor(x)), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.1


class TestRMSprop:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = nn.RMSprop([p], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-2)


class TestOptimizerValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([nn.Parameter(np.ones(1))], lr=0.0)

    def test_zero_grad_clears(self):
        p = nn.Parameter(np.array([1.0]))
        p.grad = np.array([5.0])
        nn.SGD([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)  # norm 20
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_max(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        nn.clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_handles_none_grads(self):
        p = nn.Parameter(np.zeros(2))
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_nan_grad_dropped_and_norm_reported(self):
        """A NaN gradient must not slip past the `norm > max_norm` check."""
        p = nn.Parameter(np.zeros(2))
        q = nn.Parameter(np.zeros(2))
        p.grad = np.array([np.nan, 1.0])
        q.grad = np.array([1.0, 1.0])  # healthy, but the *global* norm is poisoned
        norm = nn.clip_grad_norm([p, q], max_norm=1.0)
        assert np.isnan(norm)
        assert p.grad is None and q.grad is None

    def test_inf_grad_dropped(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([np.inf, 1.0])
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert np.isinf(norm)
        assert p.grad is None

    def test_nonfinite_keep_grads_opt_out(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([np.nan, 1.0])
        norm = nn.clip_grad_norm([p], max_norm=1.0, drop_nonfinite=False)
        assert np.isnan(norm)
        assert p.grad is not None

    def test_nan_grad_does_not_corrupt_adam_state(self):
        """The poisoned step is skipped: params and moments stay finite."""
        p = nn.Parameter(np.array([1.0, 2.0]))
        opt = nn.Adam([p], lr=0.1)
        # One healthy step to seed the moments.
        p.grad = np.array([0.5, -0.5])
        nn.clip_grad_norm([p], max_norm=5.0)
        opt.step()
        data_before = p.data.copy()
        m_before = opt._m[0].copy()
        # One poisoned step: clip drops the grads, Adam must no-op.
        p.grad = np.array([np.nan, 1.0])
        norm = nn.clip_grad_norm([p], max_norm=5.0)
        assert not np.isfinite(norm)
        opt.step()
        np.testing.assert_array_equal(p.data, data_before)
        np.testing.assert_array_equal(opt._m[0], m_before)
        assert np.all(np.isfinite(opt._m[0])) and np.all(np.isfinite(opt._v[0]))


class TestSchedulers:
    def test_step_lr(self):
        p = nn.Parameter(np.ones(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_exponential_lr(self):
        p = nn.Parameter(np.ones(1))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)
