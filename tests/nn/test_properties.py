"""Property-based tests (hypothesis) for the autograd substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import nn

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=64
)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_gradient_is_ones(data):
    x = nn.Tensor(data, requires_grad=True)
    (x + 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mul_gradient_is_other_operand(data):
    x = nn.Tensor(data, requires_grad=True)
    other = data * 2.0 + 1.0
    (x * nn.Tensor(other)).sum().backward()
    np.testing.assert_allclose(x.grad, other)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_of_mean_scales(data):
    x = nn.Tensor(data, requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, 1.0 / data.size))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2, max_side=3))
def test_tanh_gradcheck_holds(data):
    x = nn.Tensor(data, requires_grad=True)
    nn.check_gradients(lambda: (x.tanh() * x.tanh()).sum(), [x], atol=1e-3, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    arrays(dtype=np.float64, shape=(3, 2), elements=finite_floats),
    arrays(dtype=np.float64, shape=(2, 3), elements=finite_floats),
)
def test_matmul_forward_matches_numpy(a, b):
    out = nn.Tensor(a) @ nn.Tensor(b)
    np.testing.assert_allclose(out.data, a @ b)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_reshape_preserves_gradient_mass(data):
    x = nn.Tensor(data, requires_grad=True)
    x.reshape(-1).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=1, max_side=6))
def test_sigmoid_output_in_unit_interval(data):
    out = nn.Tensor(data).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=1, max_side=6))
def test_relu_idempotent(data):
    x = nn.Tensor(data)
    once = x.relu().data
    twice = x.relu().relu().data
    np.testing.assert_allclose(once, twice)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
def test_linear_preserves_batch_dimension(batch, features):
    layer = nn.Linear(features, 3, rng=np.random.default_rng(0))
    out = layer(nn.Tensor(np.ones((batch, features))))
    assert out.shape == (batch, 3)


@settings(max_examples=20, deadline=None)
@given(arrays(dtype=np.float64, shape=(4, 3), elements=finite_floats))
def test_softmax_invariant_to_shift(data):
    from repro.nn.ops import softmax

    a = softmax(nn.Tensor(data), axis=1).data
    b = softmax(nn.Tensor(data + 100.0), axis=1).data
    np.testing.assert_allclose(a, b, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=8))
def test_state_dict_roundtrip_preserves_forward(values):
    rng = np.random.default_rng(1)
    a = nn.Linear(len(values), 2, rng=rng)
    b = nn.Linear(len(values), 2, rng=np.random.default_rng(2))
    b.load_state_dict(a.state_dict())
    x = nn.Tensor(np.array([values]))
    np.testing.assert_allclose(a(x).data, b(x).data)
