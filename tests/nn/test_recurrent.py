"""Tests for LSTMCell and the multi-layer LSTM."""

import numpy as np
import pytest

from repro import nn


class TestLSTMCell:
    def test_state_shapes(self):
        cell = nn.LSTMCell(4, 8, rng=np.random.default_rng(0))
        h, c = cell.initial_state(3)
        assert h.shape == (3, 8) and c.shape == (3, 8)
        h2, c2 = cell(nn.Tensor(np.ones((3, 4))), (h, c))
        assert h2.shape == (3, 8) and c2.shape == (3, 8)

    def test_forget_bias_initialised_to_one(self):
        cell = nn.LSTMCell(2, 3, rng=np.random.default_rng(0))
        np.testing.assert_allclose(cell.bias.data[3:6], 1.0)
        np.testing.assert_allclose(cell.bias.data[:3], 0.0)

    def test_hidden_bounded_by_tanh(self):
        cell = nn.LSTMCell(4, 8, rng=np.random.default_rng(1))
        h, c = cell.initial_state(2)
        x = nn.Tensor(np.random.default_rng(2).normal(size=(2, 4)) * 10)
        h, c = cell(x, (h, c))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_gate_math_matches_reference(self):
        """One step with hand-set weights equals a numpy reference."""
        cell = nn.LSTMCell(1, 1, rng=np.random.default_rng(3))
        cell.weight_ih.data[:] = np.array([[0.5], [0.25], [1.0], [-0.5]])
        cell.weight_hh.data[:] = np.zeros((4, 1))
        cell.bias.data[:] = np.zeros(4)
        x = np.array([[2.0]])
        h, c = cell(nn.Tensor(x), cell.initial_state(1))

        def sig(v):
            return 1.0 / (1.0 + np.exp(-v))

        i, f, g, o = sig(1.0), sig(0.5), np.tanh(2.0), sig(-1.0)
        c_ref = i * g
        h_ref = o * np.tanh(c_ref)
        np.testing.assert_allclose(c.data, [[c_ref]], atol=1e-12)
        np.testing.assert_allclose(h.data, [[h_ref]], atol=1e-12)

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        cell = nn.LSTMCell(3, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def forward():
            h, c = cell(x, cell.initial_state(2))
            return (h * h).sum() + (c * c).sum()

        nn.check_gradients(forward, [x, cell.weight_ih, cell.weight_hh, cell.bias])


class TestLSTM:
    def test_output_shapes(self):
        lstm = nn.LSTM(5, [8, 6], rng=np.random.default_rng(5))
        out, state = lstm(nn.Tensor(np.ones((3, 7, 5))))
        assert out.shape == (3, 7, 6)
        assert len(state) == 2
        assert state[0][0].shape == (3, 8)
        assert state[1][0].shape == (3, 6)

    def test_int_hidden_with_num_layers(self):
        lstm = nn.LSTM(4, 6, num_layers=3, rng=np.random.default_rng(6))
        assert lstm.hidden_sizes == [6, 6, 6]
        assert len(lstm.cells) == 3

    def test_hidden_num_layers_mismatch(self):
        with pytest.raises(ValueError):
            nn.LSTM(4, [6, 6], num_layers=3)

    def test_rejects_2d_input(self):
        lstm = nn.LSTM(4, [6], rng=np.random.default_rng(7))
        with pytest.raises(ValueError):
            lstm(nn.Tensor(np.ones((3, 4))))

    def test_final_state_matches_last_output(self):
        lstm = nn.LSTM(3, [5], rng=np.random.default_rng(8))
        out, state = lstm(nn.Tensor(np.random.default_rng(9).normal(size=(2, 4, 3))))
        np.testing.assert_allclose(out.data[:, -1, :], state[0][0].data)

    def test_state_threading_continues_sequence(self):
        """Processing a sequence in two halves equals one pass."""
        rng = np.random.default_rng(10)
        lstm = nn.LSTM(3, [4], rng=rng)
        x = rng.normal(size=(2, 6, 3))
        full, _ = lstm(nn.Tensor(x))
        first, state = lstm(nn.Tensor(x[:, :3]))
        second, _ = lstm(nn.Tensor(x[:, 3:]), state)
        np.testing.assert_allclose(full.data[:, 3:], second.data, atol=1e-12)

    def test_backward_through_time(self):
        rng = np.random.default_rng(11)
        lstm = nn.LSTM(3, [4], rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
        out, _ = lstm(x)
        (out * out).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (2, 5, 3)
        # Early timesteps must receive gradient (no vanishing to exactly 0).
        assert np.abs(x.grad[:, 0]).max() > 0

    def test_gradcheck_small(self):
        rng = np.random.default_rng(12)
        lstm = nn.LSTM(2, [2], rng=rng)
        x = nn.Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)

        def forward():
            out, _ = lstm(x)
            return (out * out).sum()

        params = [x] + lstm.parameters()
        nn.check_gradients(forward, params, atol=1e-3, rtol=1e-3)

    def test_deterministic_given_rng(self):
        a = nn.LSTM(3, [4], rng=np.random.default_rng(42))
        b = nn.LSTM(3, [4], rng=np.random.default_rng(42))
        x = nn.Tensor(np.ones((1, 2, 3)))
        np.testing.assert_allclose(a(x)[0].data, b(x)[0].data)
