"""Tests for the autograd Tensor: ops, gradients, graph mechanics."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import _unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = nn.Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_int_promoted_to_float(self):
        t = nn.Tensor([1, 2, 3])
        assert t.dtype == np.float64

    def test_bool_promoted_to_float(self):
        t = nn.Tensor(np.array([True, False]))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not nn.Tensor([1.0]).requires_grad

    def test_len_and_size(self):
        t = nn.Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(nn.Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(nn.Tensor([1.0]))

    def test_item_scalar(self):
        assert nn.Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_rejects_vector(self):
        with pytest.raises(ValueError):
            nn.Tensor([1.0, 2.0]).item()

    def test_as_tensor_passthrough(self):
        t = nn.Tensor([1.0])
        assert nn.as_tensor(t) is t

    def test_as_tensor_coerces_scalar(self):
        t = nn.as_tensor(2.0)
        assert isinstance(t, nn.Tensor)
        assert t.item() == 2.0


class TestArithmeticForward:
    def test_add(self):
        out = nn.Tensor([1.0, 2.0]) + nn.Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 1.0 + nn.Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((nn.Tensor([5.0]) - 2.0).data, [3.0])
        np.testing.assert_allclose((10.0 - nn.Tensor([4.0])).data, [6.0])

    def test_mul_div(self):
        np.testing.assert_allclose((nn.Tensor([3.0]) * 4.0).data, [12.0])
        np.testing.assert_allclose((nn.Tensor([8.0]) / 2.0).data, [4.0])
        np.testing.assert_allclose((8.0 / nn.Tensor([2.0])).data, [4.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-nn.Tensor([2.0])).data, [-2.0])
        np.testing.assert_allclose((nn.Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            nn.Tensor([2.0]) ** nn.Tensor([2.0])

    def test_matmul_2d(self):
        a = nn.Tensor(np.eye(2) * 2.0)
        b = nn.Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, [[2.0, 4.0], [6.0, 8.0]])


class TestBackward:
    def test_simple_chain(self):
        x = nn.Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_grad_accumulates_over_backward_calls(self):
        x = nn.Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = nn.Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # f = (x + x) * x -> df/dx = 4x at x=3 -> 12... f = 2x^2, f' = 4x
        x = nn.Tensor(3.0, requires_grad=True)
        f = (x + x) * x
        f.backward()
        np.testing.assert_allclose(x.grad, 12.0)

    def test_shared_subexpression(self):
        x = nn.Tensor(2.0, requires_grad=True)
        y = x * x  # used twice below
        f = y + y
        f.backward()
        np.testing.assert_allclose(x.grad, 8.0)  # d(2x^2)/dx = 4x

    def test_backward_requires_scalar_or_grad(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_rejects_mis_shaped_seed(self):
        # A transposed or broadcastable-but-wrong seed must raise, not
        # silently propagate wrong gradients.
        x = nn.Tensor(np.ones((2, 3)), requires_grad=True)
        with pytest.raises(ValueError, match="seed gradient shape"):
            (x * 2.0).backward(np.ones((3, 2)))
        with pytest.raises(ValueError, match="seed gradient shape"):
            (x * 2.0).backward(np.ones(3))

    def test_backward_broadcasts_zero_dim_seed(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.float64(2.0))
        np.testing.assert_allclose(x.grad, [6.0, 6.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            nn.Tensor([1.0]).backward()

    def test_broadcast_add_gradient(self):
        x = nn.Tensor(np.ones((3, 4)), requires_grad=True)
        b = nn.Tensor(np.ones(4), requires_grad=True)
        ((x + b) * 1.0).sum().backward()
        assert x.grad.shape == (3, 4)
        np.testing.assert_allclose(b.grad, [3.0, 3.0, 3.0, 3.0])

    def test_broadcast_mul_gradient(self):
        x = nn.Tensor(np.full((2, 3), 2.0), requires_grad=True)
        s = nn.Tensor(5.0, requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 12.0)

    def test_div_gradients(self):
        a = nn.Tensor(6.0, requires_grad=True)
        b = nn.Tensor(3.0, requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, 1.0 / 3.0)
        np.testing.assert_allclose(b.grad, -6.0 / 9.0)

    def test_matmul_gradients(self):
        rng = np.random.default_rng(0)
        a = nn.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = nn.Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        nn.check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_matmul_vector_cases(self):
        rng = np.random.default_rng(1)
        v = nn.Tensor(rng.normal(size=4), requires_grad=True)
        m = nn.Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        nn.check_gradients(lambda: ((v @ m) ** 2).sum(), [v, m])
        w = nn.Tensor(rng.normal(size=3), requires_grad=True)
        nn.check_gradients(lambda: ((m @ w) ** 2).sum(), [m, w])
        u = nn.Tensor(rng.normal(size=4), requires_grad=True)
        nn.check_gradients(lambda: (v @ u) * (v @ u), [v, u])


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "func_name", ["exp", "tanh", "sigmoid", "relu", "abs", "leaky_relu", "sqrt"]
    )
    def test_gradcheck(self, func_name):
        rng = np.random.default_rng(7)
        data = rng.uniform(0.2, 2.0, size=(3, 3))  # positive: safe for sqrt
        x = nn.Tensor(data, requires_grad=True)
        nn.check_gradients(lambda: getattr(x, func_name)().sum(), [x])

    def test_log_gradcheck(self):
        x = nn.Tensor(np.array([0.5, 1.0, 2.0]), requires_grad=True)
        nn.check_gradients(lambda: x.log().sum(), [x])

    def test_clip_gradient_masks_outside(self):
        x = nn.Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_stable_at_extremes(self):
        x = nn.Tensor([-1000.0, 1000.0])
        out = x.sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_axis_gradient(self):
        x = nn.Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_mean_axis_tuple(self):
        x = nn.Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = x.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 4), 1.0 / 12.0))

    def test_max_gradient_routes_to_argmax(self):
        x = nn.Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_splits_ties(self):
        x = nn.Tensor([5.0, 5.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_max_axis(self):
        x = nn.Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        out = x.max(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = nn.Tensor(np.arange(6.0), requires_grad=True)
        (x.reshape(2, 3) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(6, 2.0))

    def test_reshape_accepts_tuple(self):
        x = nn.Tensor(np.arange(6.0))
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        x = nn.Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)
        assert x.T.shape == (4, 3, 2)

    def test_transpose_gradient(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.transpose(1, 0) * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 3.0))

    def test_getitem_gradient_scatters(self):
        x = nn.Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_repeated_index_accumulates(self):
        x = nn.Tensor(np.arange(3.0), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_squeeze_unsqueeze_gradients(self):
        x = nn.Tensor(np.ones((2, 1, 3)), requires_grad=True)
        x.squeeze(1).unsqueeze(0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 1, 3)))


class TestGraphModes:
    def test_no_grad_blocks_graph(self):
        x = nn.Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = nn.Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        assert y.data is (x * 2.0).data or np.allclose(y.data, [2.0])

    def test_comparisons_return_arrays(self):
        x = nn.Tensor([1.0, 3.0])
        assert (x > 2.0).tolist() == [False, True]
        assert (x < 2.0).tolist() == [True, False]
        assert (x >= 3.0).tolist() == [False, True]
        assert (x <= 1.0).tolist() == [True, False]

    def test_comparison_with_tensor(self):
        a = nn.Tensor([1.0, 5.0])
        b = nn.Tensor([2.0, 2.0])
        assert (a > b).tolist() == [False, True]


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_sum_prepended_axes(self):
        g = np.ones((5, 2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 3)), np.full((2, 3), 5.0))

    def test_sum_stretched_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_combined(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (1, 3)), np.full((1, 3), 8.0))
