"""Convergence tests: the substrate actually learns known functions."""

import numpy as np
import pytest

from repro import nn


def train(net, inputs, targets, steps=300, lr=0.01):
    opt = nn.Adam(net.parameters(), lr=lr)
    loss_fn = nn.MSELoss()
    losses = []
    for _ in range(steps):
        opt.zero_grad()
        loss = loss_fn(net(nn.Tensor(inputs)).reshape(-1), targets)
        loss.backward()
        opt.step()
        losses.append(loss.item())
    return losses


class TestMLP:
    def test_learns_linear_map(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 3))
        y = x @ np.array([1.5, -2.0, 0.5])
        net = nn.Sequential(nn.Linear(3, 1, rng=rng))
        losses = train(net, x, y, steps=400, lr=0.05)
        assert losses[-1] < 1e-4

    def test_learns_xor_like_interaction(self):
        rng = np.random.default_rng(1)
        x = rng.choice([-1.0, 1.0], size=(256, 2))
        y = x[:, 0] * x[:, 1]  # pure interaction: linear model cannot fit
        net = nn.Sequential(nn.Linear(2, 16, rng=rng), nn.Tanh(), nn.Linear(16, 1, rng=rng))
        losses = train(net, x, y, steps=500, lr=0.02)
        assert losses[-1] < 0.05

    def test_deep_relu_net_learns_abs(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-2, 2, size=(256, 1))
        y = np.abs(x[:, 0])
        net = nn.Sequential(
            nn.Linear(1, 16, rng=rng), nn.ReLU(), nn.Linear(16, 16, rng=rng), nn.ReLU(),
            nn.Linear(16, 1, rng=rng),
        )
        losses = train(net, x, y, steps=500, lr=0.01)
        assert losses[-1] < 0.01


class TestLSTMLearning:
    def test_learns_sequence_mean(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(256, 6, 1))
        y = x.mean(axis=(1, 2))

        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.lstm = nn.LSTM(1, [12], rng=rng)
                self.head = nn.Linear(12, 1, rng=rng)

            def forward(self, seq):
                out, _ = self.lstm(seq)
                return self.head(out[:, -1, :])

        losses = train(Net(), x, y, steps=400, lr=0.02)
        assert losses[-1] < 0.02

    def test_learns_last_element(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(256, 5, 1))
        y = x[:, -1, 0]

        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.lstm = nn.LSTM(1, [8], rng=rng)
                self.head = nn.Linear(8, 1, rng=rng)

            def forward(self, seq):
                out, _ = self.lstm(seq)
                return self.head(out[:, -1, :])

        losses = train(Net(), x, y, steps=500, lr=0.02)
        assert losses[-1] < 0.02


class TestConvLearning:
    def test_learns_centre_detector(self):
        """A conv net can learn to report the centre pixel of a patch."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(256, 1, 5, 5))
        y = x[:, 0, 2, 2]

        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.conv = nn.Conv2d(1, 4, 3, padding=1, rng=rng)
                self.head = nn.Linear(4 * 25, 1, rng=rng)

            def forward(self, img):
                return self.head(self.conv(img).relu().reshape(img.shape[0], -1))

        losses = train(Net(), x, y, steps=300, lr=0.01)
        assert losses[-1] < 0.05


class TestGANDynamics:
    def test_discriminator_learns_to_separate(self):
        """A small D separates two Gaussian populations of sequences."""
        rng = np.random.default_rng(6)
        real = rng.normal(1.0, 0.3, size=(256, 8))
        fake = rng.normal(-1.0, 0.3, size=(256, 8))
        disc = nn.Sequential(nn.Linear(8, 16, rng=rng), nn.LeakyReLU(0.2), nn.Linear(16, 1, rng=rng))
        opt = nn.Adam(disc.parameters(), lr=0.01)
        bce = nn.BCEWithLogitsLoss()
        for _ in range(200):
            opt.zero_grad()
            loss = bce(disc(nn.Tensor(real)).reshape(-1), np.ones(256)) + bce(
                disc(nn.Tensor(fake)).reshape(-1), np.zeros(256)
            )
            loss.backward()
            opt.step()
        with nn.no_grad():
            real_prob = disc(nn.Tensor(real)).reshape(-1).sigmoid().data.mean()
            fake_prob = disc(nn.Tensor(fake)).reshape(-1).sigmoid().data.mean()
        assert real_prob > 0.95
        assert fake_prob < 0.05

    def test_generator_chases_discriminator(self):
        """Adversarial pressure moves a bias parameter toward the real mean."""
        rng = np.random.default_rng(7)
        real_mean = 2.0
        real = rng.normal(real_mean, 0.1, size=(128, 4))
        offset = nn.Parameter(np.zeros(4))
        disc = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.Tanh(), nn.Linear(8, 1, rng=rng))
        g_opt = nn.Adam([offset], lr=0.05)
        d_opt = nn.Adam(disc.parameters(), lr=0.01)
        bce = nn.BCEWithLogitsLoss()
        noise = rng.normal(0.0, 0.1, size=(128, 4))
        for _ in range(300):
            fake = nn.Tensor(noise) + offset
            d_opt.zero_grad()
            d_loss = bce(disc(nn.Tensor(fake.data)).reshape(-1), np.zeros(128)) + bce(
                disc(nn.Tensor(real)).reshape(-1), np.ones(128)
            )
            d_loss.backward()
            d_opt.step()
            g_opt.zero_grad()
            g_loss = bce(disc(fake).reshape(-1), np.ones(128))
            g_loss.backward()
            g_opt.step()
            disc.zero_grad()
        # GAN dynamics oscillate around the target; assert the adversarial
        # pressure moved the generator decisively toward the real mean.
        assert offset.data.mean() > real_mean * 0.5
