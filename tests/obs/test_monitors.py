"""GAN-health monitors: codes, episode semantics, structured events."""

import json

import pytest

from repro.obs import GanHealthMonitor, GanHealthWarning, MonitorConfig, RunRecorder, TrainingMonitor


def feed_d(monitor, step, real=0.99, fake=0.01, loss=0.5, norm=1.0):
    return monitor.observe_discriminator(
        step, loss=loss, real_prob=real, fake_prob=fake, grad_norm=norm
    )


def feed_p(monitor, step, loss=1.0, mse=0.5, adv=0.5, share=0.5, norm=1.0, std=1.0):
    return monitor.observe_predictor(
        step, loss=loss, mse=mse, adv=adv, adv_share=share, grad_norm=norm, fake_std=std
    )


class TestFiniteness:
    def test_non_finite_loss_fires_immediately(self):
        monitor = TrainingMonitor(emit_python_warnings=False)
        assert monitor.check_finite(0, train_loss=float("nan")) == ["non_finite_loss"]
        assert monitor.counts["non_finite_loss"] == 1

    def test_non_finite_grad_norm_classified(self):
        monitor = TrainingMonitor(emit_python_warnings=False)
        assert monitor.check_finite(3, grad_norm=float("inf")) == ["non_finite_grad_norm"]

    def test_finite_values_silent(self):
        monitor = TrainingMonitor(emit_python_warnings=False)
        assert monitor.check_finite(0, train_loss=1.0, grad_norm=2.0) == []
        assert monitor.counts == {}

    def test_python_warning_emitted(self):
        monitor = TrainingMonitor()
        with pytest.warns(GanHealthWarning, match="non_finite_loss"):
            monitor.check_finite(0, train_loss=float("nan"))


class TestDSaturation:
    def test_fires_after_patience(self):
        cfg = MonitorConfig(patience=3)
        monitor = GanHealthMonitor(config=cfg, emit_python_warnings=False)
        assert feed_d(monitor, 0) == []
        assert feed_d(monitor, 1) == []
        assert feed_d(monitor, 2) == ["d_saturation"]

    def test_fires_once_per_episode(self):
        cfg = MonitorConfig(patience=2)
        monitor = GanHealthMonitor(config=cfg, emit_python_warnings=False)
        for step in range(6):
            feed_d(monitor, step)
        assert monitor.counts["d_saturation"] == 1
        # Condition clears -> monitor re-arms -> a second episode fires.
        feed_d(monitor, 6, real=0.5, fake=0.5)
        for step in range(7, 9):
            feed_d(monitor, step)
        assert monitor.counts["d_saturation"] == 2

    def test_balanced_probs_never_fire(self):
        monitor = GanHealthMonitor(config=MonitorConfig(patience=2), emit_python_warnings=False)
        for step in range(10):
            assert feed_d(monitor, step, real=0.7, fake=0.4) == []


class TestPredictorChecks:
    def test_adv_share_vanishing(self):
        monitor = GanHealthMonitor(config=MonitorConfig(patience=2), emit_python_warnings=False)
        assert feed_p(monitor, 0, share=1e-6) == []
        assert feed_p(monitor, 1, share=1e-6) == ["adv_loss_vanished"]

    def test_mode_collapse_on_flat_sequences(self):
        monitor = GanHealthMonitor(config=MonitorConfig(patience=2), emit_python_warnings=False)
        assert feed_p(monitor, 0, std=1e-5) == []
        assert feed_p(monitor, 1, std=1e-5) == ["mode_collapse"]

    def test_healthy_steps_silent(self):
        monitor = GanHealthMonitor(config=MonitorConfig(patience=1), emit_python_warnings=False)
        for step in range(5):
            assert feed_p(monitor, step) == []

    def test_nan_loss_detected_in_predictor_step(self):
        monitor = GanHealthMonitor(emit_python_warnings=False)
        codes = feed_p(monitor, 0, loss=float("nan"), share=float("nan"))
        assert codes == ["non_finite_loss"]


class TestRecorderIntegration:
    def test_warning_events_are_structured(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        monitor = GanHealthMonitor(rec, MonitorConfig(patience=1), emit_python_warnings=False)
        feed_d(monitor, 5)
        rec.close()
        events = [
            json.loads(line) for line in rec.events_path.read_text().splitlines() if line.strip()
        ]
        assert len(events) == 1
        event = events[0]
        assert event["kind"] == "warning"
        assert event["code"] == "d_saturation"
        assert event["step"] == 5
        assert event["real_prob"] == pytest.approx(0.99)
        assert rec.warning_counts == {"d_saturation": 1}
