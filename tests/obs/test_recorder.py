"""RunRecorder: manifest, JSONL events, sections, ambient context."""

import json
import time

import numpy as np
import pytest

from repro.obs import RunRecorder, current_recorder, use_recorder, validate_run_dir


def read_events(recorder):
    return [
        json.loads(line)
        for line in recorder.events_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


class TestManifest:
    def test_written_on_open(self, tmp_path):
        rec = RunRecorder(tmp_path / "run", manifest={"experiment": "x"})
        manifest = json.loads(rec.manifest_path.read_text())
        assert manifest["run_id"] == rec.run_id
        assert manifest["experiment"] == "x"
        for field in ("started_at", "git", "python", "numpy"):
            assert field in manifest
        rec.close()

    def test_close_finalises(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        rec.event("model_fit", name="APOTS_H")
        rec.warning("d_saturation", "D won")
        with rec.section("d_step"):
            pass
        rec.close()
        manifest = json.loads(rec.manifest_path.read_text())
        assert manifest["num_events"] == 2  # model_fit + warning
        assert manifest["warnings"] == {"d_saturation": 1}
        assert manifest["duration_seconds"] >= 0
        assert manifest["sections"]["d_step"]["count"] == 1

    def test_annotate_merges(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        rec.annotate(seed=7, trainer="APOTSTrainer")
        manifest = json.loads(rec.manifest_path.read_text())
        assert manifest["seed"] == 7 and manifest["trainer"] == "APOTSTrainer"
        rec.close()

    def test_close_idempotent_and_seals_events(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        rec.close()
        rec.close()
        with pytest.raises(RuntimeError, match="closed"):
            rec.event("model_fit", name="x")


class TestEvents:
    def test_envelope_and_payload(self, tmp_path):
        rec = RunRecorder(tmp_path / "run", clock=lambda: 123.0)
        rec.event("model_fit", name="APOTS_F", cached=False)
        rec.event("warning", code="c", message="m")
        events = read_events(rec)
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0] == {
            "seq": 0,
            "ts": 123.0,
            "kind": "model_fit",
            "name": "APOTS_F",
            "cached": False,
        }
        rec.close()

    def test_numpy_and_nonfinite_values_roundtrip(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        rec.event(
            "model_fit",
            name="x",
            loss=np.float64(1.5),
            count=np.int64(3),
            bad=float("nan"),
            arr=np.arange(2),
        )
        event = read_events(rec)[0]
        assert event["loss"] == 1.5 and event["count"] == 3 and event["arr"] == [0, 1]
        assert np.isnan(event["bad"])
        rec.close()

    def test_validates_against_schema(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        rec.event("model_fit", name="APOTS_H")
        rec.warning("mode_collapse", "flatline")
        rec.close()
        assert validate_run_dir(rec.directory) == []

    def test_section_times_into_histogram(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        with rec.section("p_step"):
            time.sleep(0.001)
        hist = rec.telemetry.histogram("section.p_step")
        assert hist.count == 1 and hist.maximum > 0
        rec.close()


class TestAmbientRecorder:
    def test_default_is_none(self):
        assert current_recorder() is None

    def test_use_recorder_installs_and_restores(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        with use_recorder(rec) as installed:
            assert installed is rec
            assert current_recorder() is rec
        assert current_recorder() is None
        rec.close()

    def test_nesting_restores_outer(self, tmp_path):
        outer = RunRecorder(tmp_path / "outer")
        inner = RunRecorder(tmp_path / "inner")
        with use_recorder(outer):
            with use_recorder(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer
        outer.close()
        inner.close()
