"""Schema validation of run logs (the contract tools/ci.sh enforces)."""

import json

from repro.obs import validate_event, validate_run_dir
from repro.obs.schema import EVENT_SCHEMA


def envelope(kind, **fields):
    return {"seq": 0, "ts": 1.0, "kind": kind, **fields}


class TestValidateEvent:
    def test_valid_events_for_every_kind(self):
        samples = {
            "step": envelope("step", epoch=0, step=1, loss=0.5, grad_norm=1.0),
            "epoch": envelope("epoch", epoch=0, train_loss=0.5, validation_loss=0.6, grad_norm=1.0),
            "early_stop": envelope("early_stop", epoch=3, patience=2),
            "d_step": envelope(
                "d_step", epoch=0, step=0, loss=0.1, real_prob=0.6, fake_prob=0.4, grad_norm=1.0
            ),
            "p_step": envelope(
                "p_step",
                epoch=0,
                step=0,
                loss=1.0,
                mse_loss=0.5,
                adv_loss=0.5,
                adv_share=0.5,
                grad_norm=1.0,
                fake_std=0.2,
            ),
            "adv_epoch": envelope(
                "adv_epoch",
                epoch=0,
                predictor_loss=1.0,
                mse_loss=0.5,
                adversarial_loss=0.5,
                discriminator_loss=1.3,
                discriminator_real_prob=0.6,
                discriminator_fake_prob=0.4,
                predictor_grad_norm=1.0,
                discriminator_grad_norm=1.0,
            ),
            "model_fit": envelope("model_fit", name="APOTS_H"),
            "warning": envelope("warning", code="d_saturation", message="D won"),
            "attack_step": envelope("attack_step", attack="pgd", epsilon=5.0, step=0, loss=1.2),
            "robustness_summary": envelope(
                "robustness_summary",
                attack="pgd",
                epsilon=5.0,
                num_samples=128,
                clean_mae=3.1,
                attacked_mae=4.2,
                clean_rmse=4.0,
                attacked_rmse=5.3,
                clean_mape=6.5,
                attacked_mape=8.9,
            ),
            "adv_train_step": envelope(
                "adv_train_step",
                epoch=0,
                step=2,
                epsilon=5.0,
                num_perturbed=8,
                num_samples=16,
                clean_loss=0.4,
                robust_loss=0.7,
                max_abs_delta_kmh=4.9,
            ),
            "robustness_delta": envelope(
                "robustness_delta",
                attack="pgd",
                epsilon=5.0,
                attacked_mae_before=4.2,
                attacked_mae_after=3.6,
                clean_mae_before=3.1,
                clean_mae_after=3.2,
            ),
            "pool_task_start": envelope("pool_task_start", task=0, attempt=0, worker=1),
            "pool_task_end": envelope(
                "pool_task_end", task=0, attempt=0, worker=1, duration_s=0.25
            ),
            "pool_task_retry": envelope(
                "pool_task_retry", task=0, attempt=0, reason="worker died (exitcode -9)"
            ),
            "fleet_shard_lost": envelope(
                "fleet_shard_lost",
                shard=1,
                method="predict_batch",
                reason="group worker 0 died mid-call during 'predict_batch' (exitcode 21)",
            ),
            "fleet_shed": envelope(
                "fleet_shed", shard=0, count=3, queue_depth=8, reason="queue full"
            ),
            "fleet_drain": envelope(
                "fleet_drain", served=12, shed=3, max_queue_depth=8, duration_s=0.02
            ),
            "fleet_loadgen_summary": envelope(
                "fleet_loadgen_summary",
                rate=10.0,
                offered=120,
                served=100,
                shed=20,
                shed_rate=0.1667,
                offered_qps=950.0,
                served_qps=790.0,
                p50_ms=1.2,
                p99_ms=26.0,
            ),
            "fleet_swap": envelope("fleet_swap", shards_swapped=2, fingerprint="ab12"),
            "drift_error": envelope(
                "drift_error",
                samples=64,
                regime="whole",
                rolling_mae=6.1,
                baseline_mae=3.0,
                ratio=2.03,
                threshold=1.5,
                breaches=2,
                triggered=False,
            ),
            "drift_input": envelope(
                "drift_input",
                samples=256,
                psi=0.31,
                psi_threshold=0.25,
                mean_kmh=48.0,
                reference_mean_kmh=71.0,
                conditioned=True,
                breaches=3,
                triggered=True,
            ),
            "network_build": envelope(
                "network_build", segments=48, junctions=16, zones=4, bfs_ordered=True
            ),
            "network_simulate": envelope(
                "network_simulate", scenario="baseline", segments=48, steps=576, duration_s=0.8
            ),
            "network_kpis": envelope(
                "network_kpis",
                scenario="stress",
                vkt=3.5e6,
                vht=1.0e5,
                mean_speed_kmh=50.7,
                congested_share=0.066,
                spillback_onsets=137,
            ),
            "network_train": envelope(
                "network_train",
                model="APOTS_F",
                targets=4,
                windows=1104,
                k=2,
                duration_s=1.7,
                fingerprint="aadb6c38319926459f242de0",
            ),
            "network_stress": envelope(
                "network_stress",
                model="APOTS_F",
                phase="cascade",
                samples=132,
                baseline_mae=5.9,
                stressed_mae=9.7,
                degradation=1.64,
            ),
            "mlops_trigger": envelope(
                "mlops_trigger", monitor="error", reason="mae ratio 2.03", step=410, seed=7
            ),
            "mlops_retrain_start": envelope(
                "mlops_retrain_start", seed=7, num_windows=320, epochs=2
            ),
            "mlops_retrain_end": envelope(
                "mlops_retrain_end", status="ok", num_windows=320, duration_s=4.2
            ),
            "mlops_shadow": envelope(
                "mlops_shadow",
                champion_mae=6.1,
                challenger_mae=3.4,
                rel_improvement=0.44,
                num_samples=80,
                promote=True,
                reason="rel improvement 0.44 >= 0.02",
            ),
            "mlops_swap": envelope(
                "mlops_swap", fingerprint="cd34", previous_fingerprint="ab12", shards=2
            ),
            "mlops_rollback": envelope(
                "mlops_rollback",
                fingerprint="cd34",
                restored_fingerprint="ab12",
                rolling_mae=9.4,
                guard_mae=3.1,
            ),
        }
        assert set(samples) == set(EVENT_SCHEMA)
        for kind, event in samples.items():
            assert validate_event(event) == [], kind

    def test_missing_envelope(self):
        errors = validate_event({"kind": "model_fit", "name": "x"})
        assert any("seq" in e for e in errors) and any("ts" in e for e in errors)

    def test_unknown_kind(self):
        assert validate_event(envelope("mystery")) == ["unknown event kind 'mystery'"]

    def test_missing_required_field(self):
        errors = validate_event(envelope("warning", code="x"))
        assert errors == ["warning: field 'message' missing or not str"]

    def test_bool_is_not_numeric(self):
        errors = validate_event(envelope("step", epoch=0, step=1, loss=True, grad_norm=1.0))
        assert any("loss" in e for e in errors)

    def test_nan_loss_is_valid(self):
        event = envelope("step", epoch=0, step=1, loss=float("nan"), grad_norm=1.0)
        assert validate_event(event) == []


class TestValidateRunDir:
    def write_run(self, tmp_path, manifest=None, lines=()):
        if manifest is not None:
            (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        (tmp_path / "events.jsonl").write_text("\n".join(lines) + "\n" if lines else "")
        return tmp_path

    def good_manifest(self):
        return {"run_id": "r", "started_at": 0.0, "git": None, "python": "3", "numpy": "1"}

    def test_valid_run(self, tmp_path):
        self.write_run(
            tmp_path,
            manifest=self.good_manifest(),
            lines=[json.dumps(envelope("model_fit", name="x"))],
        )
        assert validate_run_dir(tmp_path) == []

    def test_missing_files(self, tmp_path):
        errors = validate_run_dir(tmp_path)
        assert "manifest.json missing" in errors and "events.jsonl missing" in errors

    def test_manifest_missing_field(self, tmp_path):
        manifest = self.good_manifest()
        del manifest["run_id"]
        self.write_run(tmp_path, manifest=manifest)
        assert any("run_id" in e for e in validate_run_dir(tmp_path))

    def test_bad_json_line_located(self, tmp_path):
        self.write_run(tmp_path, manifest=self.good_manifest(), lines=["{not json"])
        errors = validate_run_dir(tmp_path)
        assert any(e.startswith("events.jsonl:1:") for e in errors)

    def test_non_monotonic_seq(self, tmp_path):
        first = json.dumps({**envelope("model_fit", name="a"), "seq": 5})
        second = json.dumps({**envelope("model_fit", name="b"), "seq": 5})
        self.write_run(tmp_path, manifest=self.good_manifest(), lines=[first, second])
        assert any("not monotonic" in e for e in validate_run_dir(tmp_path))
