"""Counters / histograms, including the reservoir-wrap contract."""

import numpy as np
import pytest

from repro.obs import Counter, Histogram, Telemetry


class TestCounter:
    def test_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestHistogram:
    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0}
        assert np.isnan(Histogram().percentile(50))

    def test_exact_stats_within_window(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["p50"] == pytest.approx(2.5)

    def test_wrap_semantics_alltime_vs_windowed(self):
        """Past ``max_samples``: count/mean/min/max stay all-time exact,
        percentiles describe only the most recent window."""
        h = Histogram(max_samples=4)
        for v in range(1, 11):  # observe 1..10, window keeps {7, 8, 9, 10}
            h.observe(float(v))
        snap = h.snapshot()
        # All-time, exact — the early observations still count.
        assert snap["count"] == 10
        assert snap["mean"] == pytest.approx(5.5)
        assert snap["min"] == 1.0
        assert snap["max"] == 10.0
        # Windowed — the early observations have rolled out.
        assert h.percentile(0) == pytest.approx(7.0)
        assert snap["p50"] == pytest.approx(8.5)
        assert h.percentile(100) == pytest.approx(10.0)

    def test_alltime_extreme_outlives_window(self):
        h = Histogram(max_samples=2)
        h.observe(1000.0)
        h.observe(1.0)
        h.observe(2.0)
        assert h.snapshot()["max"] == 1000.0  # gone from the reservoir...
        assert h.percentile(100) == pytest.approx(2.0)  # ...but not from max


class TestTelemetry:
    def test_registry_reuses_instruments(self):
        t = Telemetry()
        assert t.counter("a") is t.counter("a")
        assert t.histogram("h") is t.histogram("h")

    def test_snapshot_shape(self):
        t = Telemetry()
        t.counter("requests").inc(3)
        t.histogram("latency").observe(1.5)
        snap = t.snapshot()
        assert snap["counters"] == {"requests": 3.0}
        assert snap["histograms"]["latency"]["count"] == 1

    def test_serving_shim_warns_and_aliases(self):
        # The retired repro.serving.telemetry shim must still alias the
        # obs primitives but warn on (first) import; reimport the module
        # so the warning fires regardless of import order in the suite.
        import importlib

        from repro import obs, serving
        from repro.serving import telemetry as shim

        with pytest.warns(DeprecationWarning, match="repro.serving.telemetry is deprecated"):
            shim = importlib.reload(shim)
        assert shim.Telemetry is obs.Telemetry
        assert serving.Histogram is obs.Histogram
        assert serving.Counter is obs.Counter
