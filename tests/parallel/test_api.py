"""Tests for :func:`parallel_map` and :class:`ShardedSweep`."""

from __future__ import annotations

import pytest

from repro.parallel import (
    ShardedSweep,
    TaskFailure,
    current_task_index,
    current_task_seed,
    derive_task_seed,
    parallel_map,
)


def _double(item: int) -> int:
    return item * 2


def _raise_on_three(item: int) -> int:
    if item == 3:
        raise RuntimeError("three is right out")
    return item


def _identity_with_seed(item: int) -> tuple:
    return (item, current_task_index(), current_task_seed())


class TestParallelMap:
    def test_serial_equals_comprehension(self):
        items = list(range(9))
        assert parallel_map(_double, items, workers=1) == [_double(i) for i in items]

    def test_parallel_equals_serial(self):
        items = list(range(9))
        assert parallel_map(_double, items, workers=3) == parallel_map(
            _double, items, workers=1
        )

    def test_empty(self):
        assert parallel_map(_double, [], workers=3) == []

    @pytest.mark.parametrize("workers", [1, 3])
    def test_return_failures(self, workers):
        results = parallel_map(
            _raise_on_three, range(5), workers=workers, return_failures=True
        )
        assert isinstance(results[3], TaskFailure)
        assert [r for i, r in enumerate(results) if i != 3] == [0, 1, 2, 4]


class TestShardedSweep:
    def test_chunk_size_validation(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ShardedSweep(_double, chunk_size=0)

    def test_shards_cover_items_contiguously(self):
        sweep = ShardedSweep(_double, chunk_size=3)
        shards = sweep.shards(list(range(8)))
        assert [(base, items) for _, base, items, _ in shards] == [
            (0, [0, 1, 2]),
            (3, [3, 4, 5]),
            (6, [6, 7]),
        ]

    def test_results_flattened_in_order(self):
        items = list(range(10))
        sweep = ShardedSweep(_double, workers=3, chunk_size=3)
        assert sweep.run(items) == [_double(i) for i in items]

    def test_empty(self):
        assert ShardedSweep(_double, workers=2, chunk_size=4).run([]) == []

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_item_seeds_invariant_to_chunking(self, chunk_size):
        items = list(range(7))
        expected = [(i, i, derive_task_seed(2018, i)) for i in items]
        sweep = ShardedSweep(
            _identity_with_seed, workers=2, chunk_size=chunk_size, root_seed=2018
        )
        assert sweep.run(items) == expected

    def test_item_seeds_invariant_to_workers(self):
        items = list(range(7))
        runs = [
            ShardedSweep(
                _identity_with_seed, workers=w, chunk_size=2, root_seed=9
            ).run(items)
            for w in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]
