"""Tests for :class:`repro.parallel.WorkerGroup` (persistent replicas)."""

from __future__ import annotations

import os

import pytest

from repro.parallel import WorkerGroup, WorkerGroupError


class _Counter:
    """A stateful replica: proves each worker keeps its own state."""

    def __init__(self):
        self.total = 0

    def add(self, value: int) -> int:
        self.total += value
        return self.total

    def pid(self) -> int:
        return os.getpid()

    def boom(self) -> None:
        raise ValueError("replica exploded")

    def die(self) -> None:
        os._exit(41)


class _FailingFactory:
    def __call__(self):
        raise RuntimeError("cannot build replica")


class TestWorkerGroup:
    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerGroup(_Counter, 0)

    def test_scatter_gathers_in_worker_order(self):
        with WorkerGroup(_Counter, 3) as group:
            assert len(group) == 3
            assert group.scatter("add", [(1,), (2,), (3,)]) == [1, 2, 3]
            # State persists per worker across calls.
            assert group.scatter("add", [(1,), (2,), (3,)]) == [2, 4, 6]

    def test_scatter_subset_uses_first_workers(self):
        with WorkerGroup(_Counter, 3) as group:
            assert group.scatter("add", [(5,), (5,)]) == [5, 5]
            assert group.scatter("add", [(0,), (0,), (0,)]) == [5, 5, 0]

    def test_scatter_rejects_too_many_calls(self):
        with WorkerGroup(_Counter, 2) as group:
            with pytest.raises(ValueError, match="calls for"):
                group.scatter("add", [(1,), (1,), (1,)])

    def test_workers_are_separate_processes(self):
        with WorkerGroup(_Counter, 2) as group:
            pids = group.broadcast("pid")
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_replica_exception_surfaces_with_traceback(self):
        group = WorkerGroup(_Counter, 2)
        with pytest.raises(WorkerGroupError, match="replica exploded"):
            group.broadcast("boom")
        # The group closed itself; further calls must refuse cleanly.
        with pytest.raises(WorkerGroupError, match="closed"):
            group.broadcast("pid")

    def test_worker_death_is_an_error_not_a_hang(self):
        group = WorkerGroup(_Counter, 2)
        with pytest.raises(WorkerGroupError, match="died mid-call"):
            group.broadcast("die")

    def test_worker_death_error_names_worker_and_method(self):
        group = WorkerGroup(_Counter, 1)
        with pytest.raises(
            WorkerGroupError, match=r"worker 0 died mid-call during 'die'"
        ):
            group.broadcast("die")

    def test_start_finish_pipelines_calls_in_fifo_order(self):
        with WorkerGroup(_Counter, 2) as group:
            # Two pipelined calls to worker 0, one to worker 1, all sent
            # before any reply is read.
            group.start_call(0, "add", (1,))
            group.start_call(0, "add", (10,))
            group.start_call(1, "add", (5,))
            assert group.finish_call(1) == 5
            assert group.finish_call(0) == 1
            assert group.finish_call(0) == 11

    def test_finish_without_start_is_an_error(self):
        with WorkerGroup(_Counter, 1) as group:
            with pytest.raises(WorkerGroupError, match="no outstanding call"):
                group.finish_call(0)

    def test_start_call_validates_worker_id(self):
        with WorkerGroup(_Counter, 1) as group:
            with pytest.raises(ValueError, match="outside group"):
                group.start_call(1, "add", (1,))

    def test_start_call_on_dead_worker_names_the_method(self):
        group = WorkerGroup(_Counter, 1)
        group.start_call(0, "die")
        with pytest.raises(WorkerGroupError, match="died mid-call during 'die'"):
            group.finish_call(0)

    def test_alive_tracks_worker_processes(self):
        group = WorkerGroup(_Counter, 2)
        assert group.alive() == [True, True]
        group.close()
        assert group.alive() == [False, False]

    def test_factory_failure_raises_at_construction(self):
        with pytest.raises(WorkerGroupError, match="factory failed"):
            WorkerGroup(_FailingFactory(), 2)

    def test_close_is_idempotent(self):
        group = WorkerGroup(_Counter, 2)
        group.close()
        group.close()
        with pytest.raises(WorkerGroupError, match="closed"):
            group.scatter("add", [(1,)])
