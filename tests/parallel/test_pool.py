"""Tests for the fault-tolerant :class:`repro.parallel.WorkerPool`.

Fault-injection tasks live at module level so they pickle under any
start method; each keys its misbehaviour off :func:`current_task_attempt`
so the *retry* of the same task succeeds and the map still completes.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.obs import RunRecorder, validate_run_dir
from repro.parallel import PoolError, TaskFailure, WorkerPool, current_task_attempt

_INIT_TOKEN = None


def _square(item: int) -> int:
    return item * item


def _raise_on_two(item: int) -> int:
    if item == 2:
        raise ValueError(f"rejecting item {item}")
    return item


def _exit_on_first_attempt(item: int) -> int:
    if item == 1 and current_task_attempt() == 0:
        os._exit(23)  # hard death: no exception, no result, just a corpse
    return item * 10


def _always_exit(item: int) -> int:
    os._exit(23)


def _slow_on_first_attempt(item: int) -> int:
    if item == 0 and current_task_attempt() == 0:
        time.sleep(30.0)
    return item + 100


def _stall_on_first_attempt(item: int) -> int:
    if item == 0 and current_task_attempt() == 0:
        # SIGSTOP freezes the whole worker, heartbeat thread included —
        # the process stays alive, so only stall detection can catch it.
        os.kill(os.getpid(), signal.SIGSTOP)
    return item + 7


def _set_init_token(value: str) -> None:
    global _INIT_TOKEN
    _INIT_TOKEN = value


def _read_init_token(_: object) -> str | None:
    return _INIT_TOKEN


def _return_lambda(_: object):
    return lambda: None


class TestMapBasics:
    def test_results_in_submission_order(self):
        assert WorkerPool(3).map(_square, range(10)) == [i * i for i in range(10)]

    def test_empty_items(self):
        assert WorkerPool(3).map(_square, []) == []

    def test_serial_matches_parallel(self):
        items = list(range(7))
        assert WorkerPool(1).map(_square, items) == WorkerPool(3).map(_square, items)

    def test_single_task_stays_serial(self):
        assert WorkerPool(4).map(_square, [6]) == [36]

    def test_more_workers_than_tasks(self):
        assert WorkerPool(16).map(_square, range(3)) == [0, 1, 4]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(-1)
        with pytest.raises(ValueError, match="max_retries"):
            WorkerPool(2, max_retries=-1)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            WorkerPool(2, heartbeat_interval=0.0)


class TestTaskExceptions:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_exception_is_terminal_not_retried(self, workers):
        with pytest.raises(TaskFailure) as excinfo:
            WorkerPool(workers).map(_raise_on_two, range(5))
        assert excinfo.value.index == 2
        assert excinfo.value.attempts == 1
        assert "rejecting item 2" in excinfo.value.detail

    @pytest.mark.parametrize("workers", [1, 3])
    def test_return_failures_keeps_other_results(self, workers):
        results = WorkerPool(workers).map(_raise_on_two, range(5), return_failures=True)
        assert [r for r in results if not isinstance(r, TaskFailure)] == [0, 1, 3, 4]
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 2
        assert "task raised" in failure.reason


class TestFaultTolerance:
    def test_worker_death_retries_task(self):
        results = WorkerPool(2, max_retries=2).map(_exit_on_first_attempt, range(4))
        assert results == [0, 10, 20, 30]

    def test_retry_budget_exhaustion(self):
        # Two tasks, not one: a single task would take the serial path
        # and _always_exit would kill the test process itself.
        pool = WorkerPool(2, max_retries=1)
        results = pool.map(_always_exit, [0, 1], return_failures=True)
        assert all(isinstance(r, TaskFailure) for r in results)
        assert all("retry budget exhausted" in r.reason for r in results)
        assert all(r.attempts == 2 for r in results)  # 1 try + 1 retry

    def test_timeout_kills_and_retries(self):
        results = WorkerPool(2, task_timeout=1.0, max_retries=1).map(
            _slow_on_first_attempt, [0, 1]
        )
        assert results == [100, 101]

    def test_heartbeat_stall_detected(self):
        pool = WorkerPool(
            2,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
            max_retries=1,
        )
        assert pool.map(_stall_on_first_attempt, [0, 1]) == [7, 8]


class TestDispatchSafety:
    def test_unpicklable_task_fails_fast(self):
        # Queue.put pickles in a feeder thread whose errors vanish; the
        # pool must pre-flight and raise instead of hanging to timeout.
        started = time.monotonic()
        with pytest.raises(PoolError, match="not picklable"):
            WorkerPool(2).map(lambda x: x, range(4))
        assert time.monotonic() - started < 10.0

    def test_unpicklable_result_fails_the_task(self):
        results = WorkerPool(2).map(_return_lambda, range(2), return_failures=True)
        assert all(isinstance(r, TaskFailure) for r in results)


class TestInitializer:
    def test_runs_inside_each_worker(self):
        pool = WorkerPool(2, initializer=_set_init_token, initargs=("warm",))
        assert pool.map(_read_init_token, range(4)) == ["warm"] * 4
        assert _INIT_TOKEN is None  # parent untouched

    def test_initializer_failure_surfaces(self):
        # Missing initargs make the initializer raise inside the child;
        # that must come back as PoolError, not a hang.
        pool = WorkerPool(2, initializer=_set_init_token, initargs=())
        with pytest.raises(PoolError, match="initializer failed"):
            pool.map(_read_init_token, range(4))


class TestObservability:
    def test_events_emitted_and_schema_valid(self, tmp_path):
        recorder = RunRecorder(str(tmp_path), manifest={"tool": "test_pool"})
        pool = WorkerPool(2, max_retries=2, recorder=recorder)
        pool.map(_exit_on_first_attempt, range(4))
        recorder.close()

        assert validate_run_dir(str(tmp_path)) == []
        with open(tmp_path / "events.jsonl", encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        kinds = [e["kind"] for e in events]
        assert kinds.count("pool_task_end") == 4
        assert kinds.count("pool_task_retry") >= 1
        # Every attempt opens with a start; retried attempts close with
        # a retry event, final attempts with an end.
        assert kinds.count("pool_task_start") == kinds.count("pool_task_end") + kinds.count(
            "pool_task_retry"
        )
        ends = [e for e in events if e["kind"] == "pool_task_end"]
        assert sorted(e["task"] for e in ends) == [0, 1, 2, 3]
        assert all(e["duration_s"] >= 0 for e in ends)

    def test_serial_path_emits_events_too(self, tmp_path):
        recorder = RunRecorder(str(tmp_path), manifest={"tool": "test_pool"})
        WorkerPool(1, recorder=recorder).map(_square, range(3))
        recorder.close()
        with open(tmp_path / "events.jsonl", encoding="utf-8") as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
        assert kinds.count("pool_task_start") == 3
        assert kinds.count("pool_task_end") == 3
