"""Property tests for deterministic per-task seed derivation.

The contract (seeding.py): a task's seed depends on the pool's root
seed and the task's submission index, and on nothing else — not the
process computing it, not the worker count, not completion order.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

from repro.parallel import (
    current_task_attempt,
    current_task_index,
    current_task_seed,
    derive_task_seed,
    parallel_map,
    task_context,
)

#: Frozen (root_seed, task_index) -> seed pairs.  These values are part
#: of the reproducibility contract: changing the derivation silently
#: re-seeds every parallel sweep, so a change here must be deliberate.
PINNED = {
    (0, 0): 15793235383387715774,
    (0, 1): 5836529245451711556,
    (0, 2): 17195319236771816063,
    (2018, 0): 14667151931722001445,
    (2018, 7): 1442513495114336774,
    (123456789, 3): 7502871620069563371,
}


def _seed_in_subprocess(root: int, index: int, out) -> None:
    out.put(derive_task_seed(root, index))


def _ambient_seed(_: object) -> tuple:
    return (current_task_index(), current_task_seed())


def _ambient_seed_jittered(item: int) -> tuple:
    # Earlier tasks sleep longer, so completion order inverts submission
    # order — the seeds must not care.
    time.sleep(0.05 * (3 - item % 4))
    return (current_task_index(), current_task_seed())


class TestDeriveTaskSeed:
    def test_pinned_values(self):
        for (root, index), expected in PINNED.items():
            assert derive_task_seed(root, index) == expected

    def test_stable_across_calls(self):
        assert derive_task_seed(7, 42) == derive_task_seed(7, 42)

    def test_stable_across_processes(self):
        ctx = mp.get_context()
        out = ctx.Queue()
        process = ctx.Process(target=_seed_in_subprocess, args=(2018, 7, out))
        process.start()
        try:
            assert out.get(timeout=30) == derive_task_seed(2018, 7)
        finally:
            process.join(timeout=10)

    def test_distinct_across_indices(self):
        seeds = [derive_task_seed(0, i) for i in range(200)]
        assert len(set(seeds)) == len(seeds)

    def test_distinct_across_roots(self):
        seeds = {derive_task_seed(root, 0) for root in range(100)}
        assert len(seeds) == 100

    def test_not_a_trivial_offset(self):
        # SeedSequence mixing, not root + index: neighbours land far apart.
        assert derive_task_seed(0, 1) != derive_task_seed(0, 0) + 1
        assert derive_task_seed(1, 0) != derive_task_seed(0, 0) + 1

    def test_fits_uint64(self):
        for index in range(50):
            assert 0 <= derive_task_seed(999, index) < 2**64

    def test_negative_root_is_masked_not_rejected(self):
        assert 0 <= derive_task_seed(-1, 0) < 2**64

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="task_index"):
            derive_task_seed(0, -1)


class TestPlacementIndependence:
    def test_seeds_independent_of_worker_count(self):
        items = list(range(8))
        serial = parallel_map(_ambient_seed, items, workers=1, root_seed=2018)
        three = parallel_map(_ambient_seed, items, workers=3, root_seed=2018)
        assert serial == three
        assert [index for index, _ in serial] == items

    def test_seeds_independent_of_completion_order(self):
        items = list(range(8))
        expected = [(i, derive_task_seed(5, i)) for i in items]
        shuffled = parallel_map(_ambient_seed_jittered, items, workers=4, root_seed=5)
        assert shuffled == expected

    def test_seed_matches_derivation(self):
        results = parallel_map(_ambient_seed, range(4), workers=2, root_seed=11)
        assert results == [(i, derive_task_seed(11, i)) for i in range(4)]


class TestTaskContext:
    def test_empty_outside_any_task(self):
        assert current_task_seed() is None
        assert current_task_index() is None
        assert current_task_attempt() is None

    def test_installed_and_restored(self):
        with task_context(3, 1, 77):
            assert current_task_index() == 3
            assert current_task_attempt() == 1
            assert current_task_seed() == 77
        assert current_task_seed() is None

    def test_nested_contexts_restore_outer(self):
        with task_context(1, 0, 10):
            with task_context(2, 0, 20):
                assert current_task_index() == 2
            assert current_task_index() == 1
            assert current_task_seed() == 10

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with task_context(1, 0, 10):
                raise RuntimeError("boom")
        assert current_task_seed() is None
