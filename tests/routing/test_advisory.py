"""Tests for the stay/divert route advisory layer."""

import numpy as np
import pytest

from repro.routing import Detour, evaluate_advisories, predicted_speed_field
from repro.routing.travel_time import traverse_time_minutes


class TestDetour:
    def test_time(self):
        assert Detour(length_km=55.0, speed_kmh=55.0).time_minutes == pytest.approx(60.0)

    @pytest.mark.parametrize("kwargs", [{"length_km": 0.0}, {"length_km": 5.0, "speed_kmh": 0.0}])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Detour(**kwargs)


class TestEvaluateAdvisories:
    def _detour_for(self, series, factor):
        """A detour `factor` times the free-flow corridor time."""
        free = traverse_time_minutes(
            series.corridor,
            np.full_like(series.speeds, 100.0),
            0,
            series.interval_minutes,
        )
        return Detour(length_km=free * factor / 60.0 * 55.0, speed_kmh=55.0)

    def test_perfect_forecast_is_near_oracle(self, tiny_series):
        detour = self._detour_for(tiny_series, factor=1.6)
        starts = np.arange(0, tiny_series.num_steps - 50, 97)
        outcome = evaluate_advisories(
            tiny_series, tiny_series.speeds, starts, detour, margin_minutes=0.0
        )
        assert outcome.accuracy > 0.95
        assert outcome.minutes_saved == pytest.approx(outcome.minutes_possible, abs=1e-6)

    def test_oracle_saving_nonnegative(self, tiny_series):
        detour = self._detour_for(tiny_series, factor=1.6)
        starts = np.arange(0, tiny_series.num_steps - 50, 131)
        outcome = evaluate_advisories(tiny_series, tiny_series.speeds, starts, detour)
        assert outcome.minutes_possible >= 0.0
        assert outcome.regret_minutes >= -1e-9

    def test_terrible_forecast_loses_to_oracle(self, tiny_series):
        detour = self._detour_for(tiny_series, factor=1.3)
        starts = np.arange(0, tiny_series.num_steps - 50, 97)
        # A forecast claiming permanent free flow never diverts.
        free_flow = np.full_like(tiny_series.speeds, 100.0)
        outcome = evaluate_advisories(tiny_series, free_flow, starts, detour, margin_minutes=0.0)
        assert not outcome.decisions.any()
        assert outcome.minutes_saved == 0.0

    def test_margin_reduces_diversions(self, tiny_series):
        detour = self._detour_for(tiny_series, factor=1.2)
        starts = np.arange(0, tiny_series.num_steps - 50, 97)
        eager = evaluate_advisories(tiny_series, tiny_series.speeds, starts, detour, 0.0)
        cautious = evaluate_advisories(tiny_series, tiny_series.speeds, starts, detour, 30.0)
        assert cautious.decisions.sum() <= eager.decisions.sum()

    def test_render(self, tiny_series):
        detour = self._detour_for(tiny_series, factor=1.5)
        outcome = evaluate_advisories(
            tiny_series, tiny_series.speeds, np.array([0, 300]), detour
        )
        text = outcome.render()
        assert "accuracy" in text and "min" in text


class TestPredictedSpeedField:
    def test_replaces_only_target_row(self, tiny_dataset, micro_preset):
        from repro import APOTS

        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        field = predicted_speed_field(model, tiny_dataset)
        series = tiny_dataset.series
        target = series.corridor.target_index
        other_rows = [i for i in range(series.num_segments) if i != target]
        np.testing.assert_allclose(field[other_rows], series.speeds[other_rows])
        assert not np.allclose(field[target], series.speeds[target])

    def test_subset_restriction(self, tiny_dataset, micro_preset):
        from repro import APOTS

        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        field = predicted_speed_field(model, tiny_dataset, subsets=("test",))
        series = tiny_dataset.series
        target = series.corridor.target_index
        test_steps = tiny_dataset.features.target_steps[tiny_dataset.split.test]
        train_steps = tiny_dataset.features.target_steps[tiny_dataset.split.train]
        assert not np.allclose(field[target, test_steps], series.speeds[target, test_steps])
        np.testing.assert_allclose(field[target, train_steps], series.speeds[target, train_steps])
