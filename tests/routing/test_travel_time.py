"""Tests for travel-time integration."""

import numpy as np
import pytest

from repro.routing import (
    corridor_travel_times,
    segment_times_minutes,
    traverse_path_minutes,
    traverse_time_minutes,
)
from repro.traffic import Corridor


@pytest.fixture(scope="module")
def corridor():
    return Corridor.gyeongbu(num_segments=5, rng=np.random.default_rng(0))


class TestSegmentTimes:
    def test_basic_arithmetic(self):
        times = segment_times_minutes(np.array([60.0]), np.array([60.0]))
        np.testing.assert_allclose(times, [60.0])  # 60 km at 60 km/h

    def test_floor_prevents_infinity(self):
        times = segment_times_minutes(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(times[0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            segment_times_minutes(np.ones(2), np.ones(3))


class TestTraverse:
    def test_constant_field_matches_sum(self, corridor):
        field = np.full((5, 100), 100.0)
        total_km = sum(s.length_km for s in corridor.segments)
        expected = total_km / 100.0 * 60.0
        assert traverse_time_minutes(corridor, field, 0) == pytest.approx(expected)

    def test_slower_field_takes_longer(self, corridor):
        fast = np.full((5, 100), 100.0)
        slow = np.full((5, 100), 40.0)
        assert traverse_time_minutes(corridor, slow, 0) > traverse_time_minutes(corridor, fast, 0)

    def test_time_expansion_sees_future_columns(self, corridor):
        """Congestion that appears after departure still affects arrival."""
        field = np.full((5, 100), 100.0)
        # Segment 4 collapses from step 1 onwards; a vehicle departing at
        # step 0 reaches segment 4 minutes later and must see the jam.
        field[4, 1:] = 5.0
        jammed = traverse_time_minutes(corridor, field, 0)
        free = traverse_time_minutes(corridor, np.full((5, 100), 100.0), 0)
        assert jammed > free

    def test_partial_range(self, corridor):
        field = np.full((5, 50), 80.0)
        partial = traverse_time_minutes(corridor, field, 0, start_segment=1, end_segment=2)
        expected = sum(corridor.segments[i].length_km for i in (1, 2)) / 80.0 * 60.0
        assert partial == pytest.approx(expected)

    def test_start_step_out_of_range(self, corridor):
        with pytest.raises(ValueError):
            traverse_time_minutes(corridor, np.ones((5, 10)), 10)

    def test_bad_field_shape(self, corridor):
        with pytest.raises(ValueError):
            traverse_time_minutes(corridor, np.ones((3, 10)), 0)

    def test_bad_segment_range(self, corridor):
        with pytest.raises(ValueError):
            traverse_time_minutes(corridor, np.ones((5, 10)), 0, start_segment=3, end_segment=1)


class TestTraversePath:
    """The explicit-path general form and its corridor regression pin."""

    def lengths(self, corridor):
        return np.array([s.length_km for s in corridor.segments])

    def test_corridor_reduces_to_contiguous_path(self, corridor):
        """Regression pin: ``traverse_time_minutes`` must stay exactly the
        contiguous-range special case of ``traverse_path_minutes``."""
        rng = np.random.default_rng(4)
        field = rng.uniform(20.0, 100.0, size=(5, 60))
        for start_step in (0, 7, 40):
            for lo, hi in ((0, 4), (1, 3), (2, 2)):
                assert traverse_path_minutes(
                    self.lengths(corridor), field, range(lo, hi + 1), start_step
                ) == traverse_time_minutes(
                    corridor, field, start_step, start_segment=lo, end_segment=hi
                )

    def test_arbitrary_path_order_and_revisits(self, corridor):
        # A network route may visit rows in any order, even twice
        # (a loop); each visit reads the speed at its arrival step.
        field = np.full((5, 50), 60.0)
        path = [3, 1, 4, 1]
        expected = sum(self.lengths(corridor)[path]) / 60.0 * 60.0
        assert traverse_path_minutes(
            self.lengths(corridor), field, path, 0
        ) == pytest.approx(expected)

    def test_validation(self, corridor):
        lengths = self.lengths(corridor)
        field = np.ones((5, 10))
        with pytest.raises(ValueError, match="at least one segment"):
            traverse_path_minutes(lengths, field, [], 0)
        with pytest.raises(ValueError, match="outside field"):
            traverse_path_minutes(lengths, field, [5], 0)
        with pytest.raises(ValueError, match="start_step"):
            traverse_path_minutes(lengths, field, [0], 10)

    def test_network_route_through_grid(self):
        from repro.network import grid_city

        graph = grid_city(3, 3, seed=0)
        path = [0]
        while len(path) < 5:
            path.append(graph.downstream_of(path[-1])[0])
        lengths = np.array([s.length_km for s in graph.segments])
        field = np.full((len(graph), 30), 50.0)
        expected = sum(lengths[path]) / 50.0 * 60.0
        assert traverse_path_minutes(lengths, field, path, 0) == pytest.approx(expected)


class TestCorridorTravelTimes:
    def test_on_simulated_series(self, tiny_series):
        starts = np.array([0, 100, 500])
        times = corridor_travel_times(tiny_series, starts)
        assert times.shape == (3,)
        assert np.all(times > 0)

    def test_rush_hour_slower_than_night(self, tiny_series):
        hours = tiny_series.hours
        weekday = tiny_series.day_types[:, 0] == 1
        night = np.flatnonzero(weekday & (hours == 3))[:5]
        morning = np.flatnonzero(weekday & (hours == 8))[:5]
        night_times = corridor_travel_times(tiny_series, night)
        morning_times = corridor_travel_times(tiny_series, morning)
        assert morning_times.mean() > night_times.mean()

    def test_custom_field(self, tiny_series):
        constant = np.full_like(tiny_series.speeds, 100.0)
        times = corridor_travel_times(tiny_series, np.array([0]), speed_field=constant)
        total_km = sum(s.length_km for s in tiny_series.corridor.segments)
        assert times[0] == pytest.approx(total_km / 100.0 * 60.0)
