"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro import APOTS
from repro.serving import ForecastService, Observation


def observation_at(series, segment_id: int, step: int) -> Observation:
    """Build the Observation a live feed would emit for one series cell."""
    return Observation(
        segment_id=segment_id,
        step=step,
        speed_kmh=float(series.speeds[segment_id, step]),
        event=float(series.events[segment_id, step]),
        temperature=float(series.temperature[step]),
        precipitation=float(series.precipitation[step]),
        day_type=tuple(series.day_types[step]),
    )


def replay(target, series, steps) -> None:
    """Feed every segment's observations for ``steps`` into a store/service."""
    ingest = target.ingest
    for step in steps:
        for segment in range(series.num_segments):
            ingest(observation_at(series, segment, step))


class FakeClock:
    """A manually advanced monotonic clock for cache/batcher tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(scope="session")
def served_model(tiny_dataset, micro_preset):
    """A quickly fitted plain-F model with recorded scalers (read-only)."""
    model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
    return model.fit(tiny_dataset)


@pytest.fixture
def warm_service(served_model, tiny_series):
    """A service with 15 ticks of corridor history already ingested."""
    service = ForecastService(served_model, num_segments=tiny_series.num_segments)
    replay(service, tiny_series, range(15))
    return service
