"""MicroBatcher: coalescing, chunking, linger, canonical padding."""

import numpy as np
import pytest

from repro.serving import MicroBatcher, Telemetry, WindowView


def make_view(seed: int) -> WindowView:
    rng = np.random.default_rng(seed)
    image = rng.random((5, 4))
    day_type = rng.random(4)
    return WindowView(
        segment_id=seed,
        end_step=11,
        target_step=12,
        image=image,
        day_type=day_type,
        flat=np.concatenate([image.reshape(-1), day_type]),
        fingerprint=f"fp{seed}",
        last_speed_kmh=90.0,
    )


def sum_forward(images, day_types, flat):
    """A deterministic stand-in model: row sums of the flat features."""
    return flat.sum(axis=1)


class TestCoalescing:
    def test_flush_resolves_all(self):
        batcher = MicroBatcher(sum_forward, max_batch_size=8)
        views = [make_view(i) for i in range(5)]
        pendings = [batcher.submit(v) for v in views]
        assert not any(p.done for p in pendings)
        assert batcher.flush() == 5
        for view, pending in zip(views, pendings):
            assert pending.done
            assert pending.value == pytest.approx(view.flat.sum())

    def test_auto_flush_on_full_batch(self):
        batcher = MicroBatcher(sum_forward, max_batch_size=3)
        pendings = [batcher.submit(make_view(i)) for i in range(3)]
        assert all(p.done for p in pendings)
        assert len(batcher) == 0

    def test_large_queue_split_into_chunks(self):
        telemetry = Telemetry()
        batcher = MicroBatcher(sum_forward, max_batch_size=4, telemetry=telemetry)
        views = [make_view(i) for i in range(10)]
        pendings = []
        for view in views:
            pendings.append(batcher.submit(view))
        batcher.flush()
        assert all(p.done for p in pendings)
        # 10 requests with max 4 per forward: two full auto-flushed batches
        # of 4 plus the final flush of 2.
        sizes = telemetry.histogram("batch_size")
        assert sizes.count == 3 and sizes.maximum == 4 and sizes.minimum == 2


class TestLinger:
    def test_waits_within_linger(self, fake_clock):
        batcher = MicroBatcher(sum_forward, max_batch_size=8, linger_seconds=5.0, clock=fake_clock)
        pending = batcher.submit(make_view(0))
        assert not pending.done and not batcher.poll()
        fake_clock.advance(4.0)
        assert not batcher.poll()

    def test_flushes_after_linger(self, fake_clock):
        batcher = MicroBatcher(sum_forward, max_batch_size=8, linger_seconds=5.0, clock=fake_clock)
        pending = batcher.submit(make_view(0))
        fake_clock.advance(5.0)
        assert batcher.poll() and pending.done

    def test_late_submit_triggers_flush(self, fake_clock):
        batcher = MicroBatcher(sum_forward, max_batch_size=8, linger_seconds=5.0, clock=fake_clock)
        first = batcher.submit(make_view(0))
        fake_clock.advance(6.0)
        second = batcher.submit(make_view(1))
        assert first.done and second.done


class TestPadding:
    def test_forward_sees_canonical_batch_shape(self):
        seen = []

        def recording_forward(images, day_types, flat):
            seen.append(flat.shape[0])
            return flat.sum(axis=1)

        batcher = MicroBatcher(recording_forward, max_batch_size=16)
        batcher.submit(make_view(0))
        batcher.flush()
        pendings = [batcher.submit(make_view(i)) for i in range(5)]
        batcher.flush()
        assert seen == [16, 16]
        assert all(p.done for p in pendings)

    def test_padding_rows_do_not_leak_into_results(self):
        batcher = MicroBatcher(sum_forward, max_batch_size=16)
        view = make_view(3)
        pending = batcher.submit(view)
        batcher.flush()
        assert pending.value == pytest.approx(view.flat.sum())

    def test_unpadded_mode(self):
        seen = []

        def recording_forward(images, day_types, flat):
            seen.append(flat.shape[0])
            return flat.sum(axis=1)

        batcher = MicroBatcher(recording_forward, max_batch_size=16, pad_batches=False)
        batcher.submit(make_view(0))
        batcher.flush()
        assert seen == [1]


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(sum_forward, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(sum_forward, linger_seconds=-1)
