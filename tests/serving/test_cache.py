"""ForecastCache: TTL expiry, LRU eviction, stats."""

import pytest

from repro.serving import ForecastCache


@pytest.fixture
def cache(fake_clock) -> ForecastCache:
    return ForecastCache(capacity=3, ttl_seconds=10.0, clock=fake_clock)


class TestBasics:
    def test_miss_then_hit(self, cache):
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1 and cache.misses == 1

    def test_contains(self, cache, fake_clock):
        cache.put("k", 1)
        assert "k" in cache
        fake_clock.advance(11)
        assert "k" not in cache

    def test_clear(self, cache):
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None

    def test_disabled_cache(self, fake_clock):
        cache = ForecastCache(capacity=0, clock=fake_clock)
        cache.put("k", 1)
        assert cache.get("k") is None and len(cache) == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ForecastCache(capacity=-1)
        with pytest.raises(ValueError):
            ForecastCache(ttl_seconds=0)


class TestTTL:
    def test_expires_after_ttl(self, cache, fake_clock):
        cache.put("k", 1)
        fake_clock.advance(9.9)
        assert cache.get("k") == 1
        fake_clock.advance(0.2)
        assert cache.get("k") is None
        assert cache.ttl_evictions == 1

    def test_put_refreshes_ttl(self, cache, fake_clock):
        cache.put("k", 1)
        fake_clock.advance(8)
        cache.put("k", 2)
        fake_clock.advance(8)
        assert cache.get("k") == 2


class TestLRU:
    def test_evicts_least_recently_used(self, cache):
        for key in "abc":
            cache.put(key, key)
        cache.get("a")  # refresh a's recency
        cache.put("d", "d")  # evicts b, not a
        assert cache.get("a") == "a"
        assert cache.get("b") is None
        assert cache.lru_evictions == 1

    def test_capacity_enforced(self, cache):
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3


class TestExpiredEntriesInSize:
    def test_len_sweeps_expired(self, cache, fake_clock):
        """A stalled stream (no gets) must not report a full cache forever."""
        for key in "abc":
            cache.put(key, key)
        assert len(cache) == 3
        fake_clock.advance(11)  # past the 10s TTL, nobody calls get()
        assert len(cache) == 0
        assert cache.ttl_evictions == 3

    def test_stats_size_sweeps_expired(self, cache, fake_clock):
        cache.put("a", 1)
        fake_clock.advance(11)
        cache.put("b", 2)  # fresh entry alongside the expired one
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["ttl_evictions"] == 1

    def test_sweep_does_not_count_misses_or_hits(self, cache, fake_clock):
        cache.put("a", 1)
        fake_clock.advance(11)
        cache.stats()
        assert cache.hits == 0 and cache.misses == 0


class TestStats:
    def test_hit_rate(self, cache):
        cache.put("k", 1)
        for _ in range(9):
            cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 9 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.9)

    def test_empty_hit_rate(self, cache):
        assert cache.hit_rate == 0.0
