"""Graph-window serving: store parity with the offline pipeline, graph
readiness semantics, and end-to-end service forecasts on a road graph.

The corridor store excludes edge segments (they lack ±m neighbours); a
graph layout has no edge condition — padding rows absorb short
neighbourhoods — so *every* segment of the city must be model-servable,
and its streamed window must equal :func:`build_graph_features` bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import APOTS
from repro.data.features import fit_scalers
from repro.data.graph_features import (
    GraphFeatureConfig,
    GraphTrafficDataset,
    build_graph_features,
)
from repro.network import graph_window_layout, grid_city
from repro.network.waves import simulate_network
from repro.serving import ForecastService, IncompleteWindowError, SegmentStateStore
from repro.traffic.types import SimulationConfig

from tests.serving.conftest import replay


@pytest.fixture(scope="module")
def city():
    return grid_city(3, 3, seed=0)  # 24 segments


@pytest.fixture(scope="module")
def city_series(city):
    return simulate_network(city, SimulationConfig(num_days=1, seed=11))


@pytest.fixture(scope="module")
def graph_config(city):
    return GraphFeatureConfig(layout=graph_window_layout(city, 2))


@pytest.fixture(scope="module")
def scalers(city_series):
    return fit_scalers(city_series)


def make_store(city_series, graph_config, scalers, **kwargs) -> SegmentStateStore:
    return SegmentStateStore(
        city_series.num_segments, graph_config, scalers, **kwargs
    )


class TestGraphWindowParity:
    def test_every_segment_matches_offline(self, city_series, graph_config, scalers):
        store = make_store(city_series, graph_config, scalers)
        alpha = graph_config.alpha
        replay(store, city_series, range(alpha + 3))
        targets = list(range(city_series.num_segments))
        offline = build_graph_features(city_series, graph_config, targets, scalers)
        per = offline.windows_per_target
        flat = offline.flat()
        for segment in targets:
            view = store.window(segment)  # no edge exclusion on a graph
            w = segment * per + (view.end_step - alpha + 1)
            assert np.array_equal(view.image, offline.images[w])
            assert np.array_equal(view.flat, flat[w])
            assert view.target_step == offline.target_steps[w]
            assert view.last_speed_kmh == offline.last_input_kmh[w]

    def test_windows_many_matches_single(self, city_series, graph_config, scalers):
        store = make_store(city_series, graph_config, scalers)
        replay(store, city_series, range(graph_config.alpha))
        batch = store.windows_many([0, 7, 23, 7])
        for requested, view in zip([0, 7, 23, 7], batch):
            single = store.window(requested)
            assert view.fingerprint == single.fingerprint
            assert np.array_equal(view.image, single.image)


class TestGraphReadiness:
    def test_lagging_neighbour_blocks_target(self, city, city_series, graph_config,
                                             scalers):
        store = make_store(city_series, graph_config, scalers)
        replay(store, city_series, range(graph_config.alpha))
        target = city.target_index
        neighbour = next(
            t for t in city.k_hop_neighbourhood(target, 2) if t != target
        )
        store.reset_segment(neighbour)
        with pytest.raises(IncompleteWindowError, match="lags"):
            store.window(target)

    def test_outside_segment_never_blocks_target(self, city, city_series,
                                                 graph_config, scalers):
        store = make_store(city_series, graph_config, scalers)
        replay(store, city_series, range(graph_config.alpha))
        target = city.target_index
        hood = set(city.k_hop_neighbourhood(target, 2))
        outsider = next(s for s in range(len(city)) if s not in hood)
        store.reset_segment(outsider)
        assert store.window(target).segment_id == target

    def test_layout_store_size_mismatch_rejected(self, graph_config, scalers):
        with pytest.raises(ValueError, match="segments"):
            SegmentStateStore(7, graph_config, scalers)


@pytest.fixture(scope="module")
def graph_model(city_series, graph_config, micro_preset):
    dataset = GraphTrafficDataset(city_series, graph_config, seed=0)
    model = APOTS(predictor="F", adversarial=False, features=graph_config,
                  preset=micro_preset, seed=0)
    return model.fit(dataset)


class TestGraphService:
    def test_all_segments_served_by_model(self, city_series, graph_model):
        service = ForecastService(graph_model, city_series.num_segments)
        replay(service, city_series, range(graph_model.features.alpha))
        forecasts = service.predict_many(list(range(city_series.num_segments)))
        assert [f.source for f in forecasts] == ["model"] * city_series.num_segments

    def test_forecast_matches_direct_forward(self, city_series, graph_model):
        service = ForecastService(graph_model, city_series.num_segments)
        replay(service, city_series, range(graph_model.features.alpha))
        segment = 0  # a padded corner segment: the hard case
        view = service.store.window(segment)
        scaled = graph_model.predictor.predict(
            view.image[None], view.day_type[None], view.flat[None]
        )
        expected = float(graph_model.scalers.speed.inverse_transform(scaled)[0])
        assert service.predict(segment).speed_kmh == pytest.approx(expected)
