"""ForecastService: end-to-end serving, caching, degradation, hot swap."""

import json

import numpy as np
import pytest

from repro import APOTS
from repro.core import save_model
from repro.data import FeatureConfig
from repro.serving import ForecastService, IncompleteWindowError

from tests.serving.conftest import observation_at, replay


class TestPredict:
    def test_model_forecast_matches_offline_predictor(
        self, warm_service, served_model, tiny_dataset
    ):
        target = tiny_dataset.series.corridor.target_index
        forecast = warm_service.predict(target)
        assert forecast.source == "model" and not forecast.degraded
        view = warm_service.store.window(target)
        k = view.end_step - tiny_dataset.config.alpha + 1
        offline_scaled = served_model.predictor.predict(
            tiny_dataset.features.images[k : k + 1],
            tiny_dataset.features.day_types[k : k + 1],
            tiny_dataset.features.flat()[k : k + 1],
        )
        offline_kmh = tiny_dataset.kmh(offline_scaled)[0]
        assert forecast.speed_kmh == pytest.approx(offline_kmh, rel=1e-12)

    def test_target_step_is_beta_ahead(self, warm_service, served_model):
        forecast = warm_service.predict(4)
        assert forecast.target_step == 14 + served_model.features.beta
        assert forecast.horizon_steps == served_model.features.beta

    def test_invalid_horizon(self, warm_service):
        with pytest.raises(ValueError, match="horizon"):
            warm_service.predict(4, horizon_steps=0)


class TestCaching:
    def test_repeat_query_hits_cache(self, warm_service):
        first = warm_service.predict(4)
        second = warm_service.predict(4)
        assert not first.from_cache and second.from_cache
        assert second.speed_kmh == first.speed_kmh
        assert warm_service.cache.stats()["hits"] == 1

    def test_new_observation_invalidates(self, warm_service, tiny_series):
        first = warm_service.predict(4)
        replay(warm_service, tiny_series, [15])
        second = warm_service.predict(4)
        assert not second.from_cache
        assert second.target_step == first.target_step + 1

    def test_cache_can_be_bypassed(self, warm_service):
        warm_service.predict(4)
        assert not warm_service.predict(4, use_cache=False).from_cache


class TestDegradation:
    def test_warming_segment_served_naively(self, served_model, tiny_series):
        service = ForecastService(served_model, num_segments=tiny_series.num_segments)
        replay(service, tiny_series, range(3))
        forecast = service.predict(4)
        assert forecast.degraded and forecast.source == "naive"
        assert "3/12" in forecast.degraded_reason
        assert forecast.speed_kmh == float(tiny_series.speeds[4, 2])

    def test_edge_segment_served_naively(self, warm_service, tiny_series):
        forecast = warm_service.predict(0)
        assert forecast.degraded and "neighbours" in forecast.degraded_reason
        assert forecast.speed_kmh == float(tiny_series.speeds[0, 14])

    def test_unsupported_horizon_served_naively(self, warm_service):
        forecast = warm_service.predict(4, horizon_steps=6)
        assert forecast.degraded and "horizon 6 unsupported" in forecast.degraded_reason

    def test_unseen_segment_is_an_error(self, served_model, tiny_series):
        service = ForecastService(served_model, num_segments=tiny_series.num_segments)
        with pytest.raises(IncompleteWindowError):
            service.predict(4)

    def test_unfitted_model_rejected(self, micro_preset):
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset)
        with pytest.raises(ValueError, match="scalers"):
            ForecastService(model, num_segments=9)


class TestMicroBatchEquivalence:
    def test_batched_bitwise_equals_per_request(self, warm_service, tiny_series):
        servable = list(range(2, tiny_series.num_segments - 2))
        batched = warm_service.predict_many(servable, use_cache=False)
        singles = [warm_service.predict(s, use_cache=False) for s in servable]
        for batch_forecast, single_forecast in zip(batched, singles):
            assert batch_forecast.speed_kmh == single_forecast.speed_kmh  # bitwise

    def test_order_preserved_with_mixed_outcomes(self, warm_service, tiny_series):
        # Edge segment (degraded), cached segment, fresh segments.
        warm_service.predict(3)
        requested = [0, 3, 4, 5]
        forecasts = warm_service.predict_many(requested)
        assert [f.segment_id for f in forecasts] == requested
        assert forecasts[0].degraded
        assert forecasts[1].from_cache
        assert not forecasts[2].degraded and not forecasts[2].from_cache

    def test_single_forward_per_call(self, warm_service, tiny_series):
        servable = list(range(2, tiny_series.num_segments - 2))
        warm_service.predict_many(servable, use_cache=False)
        sizes = warm_service.telemetry.histogram("batch_size")
        assert sizes.count == 1 and sizes.maximum == len(servable)


class TestCheckpointServing:
    def test_from_checkpoint_reproduces_live_service(
        self, served_model, tiny_series, tmp_path
    ):
        # The acceptance check: a checkpoint round-trip must serve the
        # exact same forecasts on raw (unscaled) observations.
        save_model(served_model, tmp_path / "ckpt")
        live = ForecastService(served_model, num_segments=tiny_series.num_segments)
        restored = ForecastService.from_checkpoint(
            tmp_path / "ckpt", num_segments=tiny_series.num_segments
        )
        replay(live, tiny_series, range(15))
        replay(restored, tiny_series, range(15))
        servable = list(range(2, tiny_series.num_segments - 2))
        for a, b in zip(live.predict_many(servable), restored.predict_many(servable)):
            assert a.speed_kmh == b.speed_kmh  # bitwise

    def test_hot_swap_mid_stream(
        self, served_model, tiny_dataset, tiny_series, micro_preset, tmp_path
    ):
        other = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=7)
        other.fit(tiny_dataset)
        save_model(served_model, tmp_path / "a")
        save_model(other, tmp_path / "b")
        service = ForecastService.from_checkpoint(
            tmp_path / "a", num_segments=tiny_series.num_segments
        )
        replay(service, tiny_series, range(15))
        before = service.predict(4)
        assert len(service.cache) == 1
        service.load_checkpoint(tmp_path / "b")
        assert len(service.cache) == 0  # stale forecasts dropped
        after = service.predict(4)
        assert after.speed_kmh != before.speed_kmh  # different weights serve
        assert service.telemetry.counter("checkpoint_swaps").value == 1
        # The stream keeps flowing across the swap.
        replay(service, tiny_series, [15])
        assert not service.predict(4).degraded

    def test_cache_keys_are_fingerprint_namespaced(
        self, served_model, tiny_dataset, tiny_series, micro_preset, tmp_path
    ):
        """Regression: even an *uncleared* cache cannot leak stale values.

        ``swap_checkpoint`` clears the cache, but the load-bearing
        guarantee is the fingerprint in the cache key — defence in depth
        against any future path that forgets to clear.  Disable the
        clear and prove a pre-swap entry still cannot answer.
        """
        other = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=7)
        other.fit(tiny_dataset)
        save_model(served_model, tmp_path / "a")
        save_model(other, tmp_path / "b")
        service = ForecastService.from_checkpoint(
            tmp_path / "a", num_segments=tiny_series.num_segments
        )
        replay(service, tiny_series, range(15))
        service.predict(4)
        assert service.predict(4).from_cache  # entry is primed
        service.cache.clear = lambda: None  # sabotage the belt...
        service.swap_checkpoint(tmp_path / "b")
        assert len(service.cache) == 1  # stale entry really survived
        after = service.predict(4)
        assert not after.from_cache  # ...the braces still hold
        assert after.model_fingerprint == service.fingerprint

    def test_swap_rejects_geometry_mismatch(self, warm_service, micro_preset, tmp_path):
        other = APOTS(
            predictor="F",
            features=FeatureConfig(m=1),
            adversarial=False,
            preset=micro_preset,
        )
        save_model(other, tmp_path / "bad")
        with pytest.raises(ValueError, match="geometry"):
            warm_service.load_checkpoint(tmp_path / "bad")

    def test_swap_rejects_scalerless_checkpoint(
        self, warm_service, served_model, tmp_path
    ):
        path = save_model(served_model, tmp_path / "v1")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 1
        manifest.pop("scalers")
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="scaler state"):
            warm_service.load_checkpoint(path)


class TestTelemetry:
    def test_snapshot_shape(self, warm_service):
        warm_service.predict(4)
        warm_service.predict(4)
        warm_service.predict(0)
        snap = warm_service.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["counters"]["degraded_forecasts"] == 1
        assert snap["cache"]["hits"] == 1
        assert snap["model"] == "F"
        assert snap["histograms"]["predict_latency_ms"]["count"] == 3
        assert snap["histograms"]["predict_latency_ms"]["p99"] >= 0

    def test_observation_counter(self, served_model, tiny_series):
        service = ForecastService(served_model, num_segments=tiny_series.num_segments)
        count = service.ingest_many(
            observation_at(tiny_series, segment, 0)
            for segment in range(tiny_series.num_segments)
        )
        assert count == tiny_series.num_segments
        assert service.telemetry.counter("observations").value == count
        service.ingest(observation_at(tiny_series, 0, 1))
        assert service.telemetry.counter("observations").value == count + 1
