"""SegmentStateStore: window assembly parity, stream validation, fingerprints."""

import numpy as np
import pytest

from repro.data import FactorMask, FeatureConfig
from repro.data.features import build_features
from repro.serving import (
    IncompleteWindowError,
    Observation,
    SegmentStateStore,
    StaleObservationError,
    StreamGapError,
    UnknownSegmentError,
)

from tests.serving.conftest import observation_at, replay


def make_store(series, dataset, **kwargs) -> SegmentStateStore:
    return SegmentStateStore(
        series.num_segments, dataset.config, dataset.features.scalers, **kwargs
    )


class TestWindowParity:
    """Streaming assembly must match the offline pipeline bit for bit."""

    def test_matches_build_features(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        alpha = tiny_dataset.config.alpha
        target = tiny_series.corridor.target_index
        replay(store, tiny_series, range(alpha + 5))
        view = store.window(target)
        k = view.end_step - alpha + 1  # offline window index
        assert np.array_equal(view.image, tiny_dataset.features.images[k])
        assert np.array_equal(view.day_type, tiny_dataset.features.day_types[k])
        assert np.array_equal(view.flat, tiny_dataset.features.flat()[k])
        assert view.target_step == tiny_dataset.features.target_steps[k]
        assert view.last_speed_kmh == tiny_dataset.features.last_input_kmh[k]

    def test_matches_after_ring_wraparound(self, tiny_series, tiny_dataset):
        # Far more pushes than the ring capacity: old slots are overwritten.
        store = make_store(tiny_series, tiny_dataset)
        alpha = tiny_dataset.config.alpha
        target = tiny_series.corridor.target_index
        replay(store, tiny_series, range(4 * alpha))
        view = store.window(target)
        k = view.end_step - alpha + 1
        assert np.array_equal(view.image, tiny_dataset.features.images[k])

    def test_matches_under_factor_mask(self, tiny_series, tiny_dataset):
        config = FeatureConfig(mask=FactorMask.speed_only())
        features = build_features(tiny_series, config, tiny_dataset.features.scalers)
        store = SegmentStateStore(
            tiny_series.num_segments, config, tiny_dataset.features.scalers
        )
        replay(store, tiny_series, range(config.alpha))
        view = store.window(tiny_series.corridor.target_index)
        assert np.array_equal(view.image, features.images[view.end_step - config.alpha + 1])
        # Masked channels really are zero.
        assert not view.image[0].any() and not view.image[-1].any()

    def test_every_interior_segment_assembles(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        m = tiny_dataset.config.m
        replay(store, tiny_series, range(tiny_dataset.config.alpha))
        for segment in range(m, tiny_series.num_segments - m):
            view = store.window(segment)
            assert view.image.shape == (tiny_dataset.config.image_rows, tiny_dataset.config.alpha)


class TestStreamValidation:
    def test_out_of_order_rejected(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        store.ingest(observation_at(tiny_series, 0, 5))
        store.ingest(observation_at(tiny_series, 0, 6))
        with pytest.raises(StaleObservationError, match="out of order"):
            store.ingest(observation_at(tiny_series, 0, 5))

    def test_duplicate_step_rejected(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        store.ingest(observation_at(tiny_series, 0, 5))
        with pytest.raises(StaleObservationError):
            store.ingest(observation_at(tiny_series, 0, 5))

    def test_gap_rejected_with_reset_hint(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        store.ingest(observation_at(tiny_series, 3, 0))
        with pytest.raises(StreamGapError, match="skipped steps 1..4"):
            store.ingest(observation_at(tiny_series, 3, 5))

    def test_reset_segment_recovers_from_gap(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        store.ingest(observation_at(tiny_series, 3, 0))
        with pytest.raises(StreamGapError):
            store.ingest(observation_at(tiny_series, 3, 5))
        store.reset_segment(3)
        store.ingest(observation_at(tiny_series, 3, 5))
        assert store.latest_step(3) == 5

    def test_unknown_segment(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        with pytest.raises(UnknownSegmentError):
            store.ingest(Observation(segment_id=99, step=0, speed_kmh=80.0))
        with pytest.raises(UnknownSegmentError):
            store.window(-1)

    def test_gaps_do_not_cross_segments(self, tiny_series, tiny_dataset):
        # Each segment's stream is validated independently.
        store = make_store(tiny_series, tiny_dataset)
        store.ingest(observation_at(tiny_series, 0, 0))
        store.ingest(observation_at(tiny_series, 1, 7))  # fresh stream, fine
        assert store.latest_step(1) == 7


class TestIncompleteWindows:
    def test_warming_up(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        replay(store, tiny_series, range(3))
        with pytest.raises(IncompleteWindowError, match="3/12 consecutive"):
            store.window(tiny_series.corridor.target_index)

    def test_edge_segment(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        replay(store, tiny_series, range(tiny_dataset.config.alpha))
        with pytest.raises(IncompleteWindowError, match="neighbours"):
            store.window(0)

    def test_lagging_neighbour(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        target = tiny_series.corridor.target_index
        replay(store, tiny_series, range(tiny_dataset.config.alpha))
        # The target advances one tick; its neighbours do not.
        store.ingest(observation_at(tiny_series, target, tiny_dataset.config.alpha))
        with pytest.raises(IncompleteWindowError, match="lags"):
            store.window(target)

    def test_no_observations_at_all(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        with pytest.raises(IncompleteWindowError):
            store.last_speed_kmh(2)


class TestFingerprint:
    def test_stable_across_calls(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        target = tiny_series.corridor.target_index
        replay(store, tiny_series, range(tiny_dataset.config.alpha))
        assert store.window(target).fingerprint == store.window(target).fingerprint

    def test_changes_on_new_observation(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        target = tiny_series.corridor.target_index
        alpha = tiny_dataset.config.alpha
        replay(store, tiny_series, range(alpha))
        before = store.window(target).fingerprint
        replay(store, tiny_series, [alpha])
        assert store.window(target).fingerprint != before

    def test_differs_between_segments(self, tiny_series, tiny_dataset):
        store = make_store(tiny_series, tiny_dataset)
        replay(store, tiny_series, range(tiny_dataset.config.alpha))
        m = tiny_dataset.config.m
        assert store.window(m).fingerprint != store.window(m + 1).fingerprint


class TestConstruction:
    def test_capacity_below_alpha_rejected(self, tiny_series, tiny_dataset):
        with pytest.raises(ValueError, match="capacity"):
            make_store(tiny_series, tiny_dataset, capacity=4)

    def test_context_carry_forward(self, tiny_dataset, tiny_series):
        # Weather omitted after the first tick: values carry forward, and
        # the window still assembles.
        store = make_store(tiny_series, tiny_dataset)
        alpha = tiny_dataset.config.alpha
        for step in range(alpha):
            for segment in range(tiny_series.num_segments):
                obs = observation_at(tiny_series, segment, step)
                if step > 0:
                    obs = Observation(
                        segment_id=obs.segment_id,
                        step=obs.step,
                        speed_kmh=obs.speed_kmh,
                        event=obs.event,
                        day_type=obs.day_type,
                    )
                store.ingest(obs)
        view = store.window(tiny_series.corridor.target_index)
        temperature_row = view.image[tiny_dataset.config.num_roads]
        # All steps carry the first tick's (scaled) temperature.
        assert np.allclose(temperature_row, temperature_row[0])
