"""Smoke tests: every example script runs end to end at micro scale."""

import runpy
import sys
from pathlib import Path

import pytest

import repro.experiments.scenario as scenario
from tests.conftest import MICRO_PRESET

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def micro_presets(monkeypatch):
    """Force every preset name to the micro scale inside example runs.

    Mutates the shared PRESETS dict in place so modules that imported it
    by reference (the APOTS facade, the scenario helpers) see the patch.
    """
    from repro.core import config

    for name in list(config.PRESETS):
        monkeypatch.setitem(config.PRESETS, name, MICRO_PRESET)
    scenario.clear_model_cache()


def run_example(name: str, argv: list[str]) -> None:
    monkey_argv = [str(EXAMPLES / name)] + argv
    old = sys.argv
    sys.argv = monkey_argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "rush_hour_forecasting.py",
        "accident_response.py",
        "compare_baselines.py",
        "factor_ablation.py",
        "bring_your_own_data.py",
        "route_guidance.py",
        "serve_forecasts.py",
        "fleet_serving.py",
    ],
)
def test_example_runs(script, capsys):
    run_example(script, ["smoke"])
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_prints_metrics(capsys):
    run_example("quickstart.py", ["smoke"])
    out = capsys.readouterr().out
    assert "MAPE" in out
    assert "APOTS_H" in out


def test_compare_baselines_includes_prophet(capsys):
    run_example("compare_baselines.py", ["smoke"])
    out = capsys.readouterr().out
    assert "Prophet" in out and "LastValue" in out


def test_serve_forecasts_prints_telemetry(capsys):
    run_example("serve_forecasts.py", ["smoke"])
    out = capsys.readouterr().out
    assert "telemetry snapshot" in out
    assert '"hit_rate"' in out and '"batch_size"' in out


def test_factor_ablation_ranks_factors(capsys):
    run_example("factor_ablation.py", ["smoke", "F"])
    out = capsys.readouterr().out
    assert "single-factor impact ranking" in out
