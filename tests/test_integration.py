"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro import APOTS, FactorMask, FeatureConfig, SimulationConfig, TrafficDataset, simulate
from repro.nn import load_state, save_state


class TestFullPipeline:
    def test_simulate_train_evaluate(self, tiny_dataset, micro_preset):
        """Simulator -> dataset -> adversarial APOTS_H -> regime metrics."""
        model = APOTS(predictor="H", adversarial=True, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        report = model.evaluate(tiny_dataset)
        assert np.isfinite(report.mape)
        assert report.regime_counts["whole"] == len(tiny_dataset.split.test)

    def test_trained_model_beats_untrained(self, tiny_dataset, micro_preset):
        from repro.core.config import ScalePreset

        longer = ScalePreset(
            name="longer",
            num_days=6,
            width_factor=0.05,
            epochs=8,
            adversarial_epochs=2,
            batch_size=64,
            max_steps_per_epoch=20,
        )
        untrained = APOTS(predictor="F", adversarial=False, preset=longer, seed=0)
        untrained_mape = untrained.evaluate(tiny_dataset).mape
        trained = APOTS(predictor="F", adversarial=False, preset=longer, seed=0)
        trained.fit(tiny_dataset)
        assert trained.evaluate(tiny_dataset).mape < untrained_mape

    def test_predictor_state_roundtrips_through_file(
        self, tiny_dataset, micro_preset, tmp_path
    ):
        model = APOTS(predictor="C", adversarial=False, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        predictions = model.predict(tiny_dataset)
        save_state(model.predictor, tmp_path / "c.npz")

        fresh = APOTS(predictor="C", adversarial=False, preset=micro_preset, seed=42)
        load_state(fresh.predictor, tmp_path / "c.npz")
        np.testing.assert_allclose(fresh.predict(tiny_dataset), predictions)

    def test_pipeline_reproducible_from_seeds(self, micro_preset):
        outputs = []
        for _ in range(2):
            series = simulate(SimulationConfig(num_days=6, seed=77))
            dataset = TrafficDataset(series, FeatureConfig(), seed=3)
            model = APOTS(predictor="F", adversarial=True, preset=micro_preset, seed=5)
            model.fit(dataset)
            outputs.append(model.predict(dataset))
        np.testing.assert_allclose(outputs[0], outputs[1])

    def test_masked_dataset_trains(self, tiny_series, micro_preset):
        dataset = TrafficDataset(
            tiny_series, FeatureConfig(mask=FactorMask.table2("SWT")), seed=5
        )
        model = APOTS(predictor="F", adversarial=True, preset=micro_preset, seed=0)
        model.fit(dataset)
        assert np.isfinite(model.evaluate(dataset).mape)

    def test_different_geometry_pipeline(self, micro_preset):
        """Non-default alpha/m flow end to end."""
        series = simulate(SimulationConfig(num_days=6, seed=13))
        features = FeatureConfig(alpha=6, beta=2, m=1)
        dataset = TrafficDataset(series, features, seed=2)
        model = APOTS(
            predictor="L", features=features, adversarial=True, preset=micro_preset, seed=0
        )
        model.fit(dataset)
        report = model.evaluate(dataset)
        assert np.isfinite(report.mape)


class TestCrossModelConsistency:
    def test_all_predictors_share_evaluation_protocol(self, tiny_dataset, micro_preset):
        truth, _ = tiny_dataset.evaluation_arrays("test")
        for kind in "FLCH":
            model = APOTS(predictor=kind, adversarial=False, preset=micro_preset, seed=0)
            model.fit(tiny_dataset)
            report = model.evaluate(tiny_dataset)
            assert report.predictions_kmh.shape == truth.shape
            np.testing.assert_allclose(report.targets_kmh, truth)

    def test_baselines_and_neural_share_test_set(self, tiny_dataset, micro_preset):
        from repro.baselines import LastValueBaseline

        baseline_prediction = LastValueBaseline().fit(tiny_dataset).predict(tiny_dataset)
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        model.fit(tiny_dataset)
        neural_prediction = model.predict(tiny_dataset)
        assert baseline_prediction.shape == neural_prediction.shape
