"""Tests for the Korean calendar utilities."""

import datetime as dt

import numpy as np
import pytest

from repro.traffic import (
    KOREAN_HOLIDAYS_2018,
    DayType,
    day_type_flags,
    is_holiday,
    is_weekend,
    timeline,
)


class TestHolidays:
    def test_exactly_seven_holidays(self):
        """The paper notes its 122-day dataset has only 7 holidays."""
        assert len(KOREAN_HOLIDAYS_2018) == 7

    def test_all_within_study_window(self):
        for day in KOREAN_HOLIDAYS_2018:
            assert dt.date(2018, 7, 1) <= day <= dt.date(2018, 10, 30)

    def test_liberation_day(self):
        assert is_holiday(dt.date(2018, 8, 15))

    def test_ordinary_day(self):
        assert not is_holiday(dt.date(2018, 7, 2))

    def test_weekend(self):
        assert is_weekend(dt.date(2018, 7, 7))  # Saturday
        assert is_weekend(dt.date(2018, 7, 8))  # Sunday
        assert not is_weekend(dt.date(2018, 7, 9))  # Monday


class TestDayTypeFlags:
    def test_plain_weekday(self):
        flags = day_type_flags(dt.date(2018, 7, 3))  # Tuesday
        assert flags == DayType(True, False, False, False)

    def test_holiday_itself(self):
        flags = day_type_flags(dt.date(2018, 8, 15))
        assert flags.holiday and not flags.weekday

    def test_paper_example_day_before_holiday(self):
        """A weekday before a holiday encodes [1, 0, 1, 0]."""
        flags = day_type_flags(dt.date(2018, 8, 14))  # Tuesday before Aug 15
        np.testing.assert_array_equal(flags.as_array(), [1.0, 0.0, 1.0, 0.0])

    def test_day_after_holiday(self):
        flags = day_type_flags(dt.date(2018, 8, 16))
        np.testing.assert_array_equal(flags.as_array(), [1.0, 0.0, 0.0, 1.0])

    def test_inside_chuseok_run_is_before_and_after(self):
        flags = day_type_flags(dt.date(2018, 9, 24))  # middle of Chuseok
        assert flags.holiday and flags.day_before_holiday and flags.day_after_holiday

    def test_weekend_is_not_weekday(self):
        flags = day_type_flags(dt.date(2018, 7, 7))
        assert not flags.weekday and not flags.holiday

    def test_as_array_dtype(self):
        assert day_type_flags(dt.date(2018, 7, 3)).as_array().dtype == np.float64


class TestTimeline:
    def test_length_per_day(self):
        stamps = timeline(dt.date(2018, 7, 1), 2, interval_minutes=5)
        assert len(stamps) == 2 * 288

    def test_cadence(self):
        stamps = timeline(dt.date(2018, 7, 1), 1, interval_minutes=5)
        assert stamps[1] - stamps[0] == dt.timedelta(minutes=5)
        assert stamps[0] == dt.datetime(2018, 7, 1, 0, 0)
        assert stamps[-1] == dt.datetime(2018, 7, 1, 23, 55)

    def test_other_interval(self):
        stamps = timeline(dt.date(2018, 7, 1), 1, interval_minutes=15)
        assert len(stamps) == 96

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            timeline(dt.date(2018, 7, 1), 0)

    def test_interval_must_divide_day(self):
        with pytest.raises(ValueError):
            timeline(dt.date(2018, 7, 1), 1, interval_minutes=7)
