"""Tests for incident generation and mask expansion."""

import numpy as np
import pytest

from repro.traffic import Incident, SimulationConfig, incident_masks, sample_incidents


def make_incident(**overrides):
    defaults = dict(
        segment=4, start_step=10, duration_steps=6, recovery_steps=4, severity=0.5, kind="accident"
    )
    defaults.update(overrides)
    return Incident(**defaults)


class TestIncidentValidation:
    def test_valid(self):
        incident = make_incident()
        assert incident.end_step == 16

    @pytest.mark.parametrize(
        "overrides",
        [
            {"severity": 0.0},
            {"severity": 1.5},
            {"duration_steps": 0},
            {"kind": "meteor"},
        ],
    )
    def test_invalid(self, overrides):
        with pytest.raises(ValueError):
            make_incident(**overrides)


class TestSampleIncidents:
    def test_counts_scale_with_rate(self):
        low = SimulationConfig(num_days=30, accident_rate_per_day=0.1, seed=1)
        high = SimulationConfig(num_days=30, accident_rate_per_day=3.0, seed=1)
        rng = np.random.default_rng(0)
        few = sample_incidents(low, 9, rng)
        rng = np.random.default_rng(0)
        many = sample_incidents(high, 9, rng)
        assert len(many) > len(few)

    def test_segments_in_range(self):
        config = SimulationConfig(num_days=20, seed=1)
        incidents = sample_incidents(config, 5, np.random.default_rng(0))
        assert all(0 <= i.segment < 5 for i in incidents)

    def test_construction_overnight(self):
        config = SimulationConfig(num_days=60, construction_rate_per_day=1.0, seed=1)
        incidents = sample_incidents(config, 9, np.random.default_rng(0))
        constructions = [i for i in incidents if i.kind == "construction"]
        assert constructions, "expected at least one construction event"
        steps_per_day = config.steps_per_day
        for event in constructions:
            hour = (event.start_step % steps_per_day) * config.interval_minutes / 60.0
            assert hour >= 22.0

    def test_reproducible(self):
        config = SimulationConfig(num_days=10, seed=1)
        a = sample_incidents(config, 9, np.random.default_rng(3))
        b = sample_incidents(config, 9, np.random.default_rng(3))
        assert a == b


class TestIncidentMasks:
    def test_severity_applied_during_active_phase(self):
        incident = make_incident(segment=2, start_step=5, duration_steps=4, severity=0.4)
        factor, flags = incident_masks([incident], 5, 30, upstream_decay=0.5, delay_steps=1)
        np.testing.assert_allclose(factor[2, 5:9], 0.4)

    def test_recovery_ramps_back_to_one(self):
        incident = make_incident(segment=0, start_step=0, duration_steps=2, recovery_steps=4, severity=0.5)
        factor, _ = incident_masks([incident], 1, 20, upstream_decay=0.5, delay_steps=1)
        recovery = factor[0, 2:6]
        assert np.all(np.diff(recovery) > 0)
        np.testing.assert_allclose(factor[0, 6:], 1.0)

    def test_flags_only_on_hit_segment_active_phase(self):
        incident = make_incident(segment=3, start_step=5, duration_steps=4)
        _, flags = incident_masks([incident], 5, 30, upstream_decay=0.5, delay_steps=1)
        assert flags[3, 5:9].sum() == 4
        assert flags.sum() == 4  # nowhere else

    def test_upstream_propagation_damped_and_delayed(self):
        incident = make_incident(segment=4, start_step=10, duration_steps=6, severity=0.4)
        factor, _ = incident_masks([incident], 6, 40, upstream_decay=0.5, delay_steps=2)
        # Upstream neighbour gets a milder factor, starting 2 steps later.
        np.testing.assert_allclose(factor[3, 10:12], 1.0)
        assert 0.4 < factor[3, 12] < 1.0
        # Two segments up: milder still.
        assert factor[2, 14] > factor[3, 12]
        # Downstream untouched.
        np.testing.assert_allclose(factor[5], 1.0)

    def test_overlapping_incidents_take_minimum(self):
        a = make_incident(segment=1, start_step=5, duration_steps=5, severity=0.6)
        b = make_incident(segment=1, start_step=7, duration_steps=5, severity=0.3)
        factor, _ = incident_masks([a, b], 3, 30, upstream_decay=0.5, delay_steps=1)
        np.testing.assert_allclose(factor[1, 7:10], 0.3)

    def test_incident_past_end_is_clipped(self):
        incident = make_incident(segment=0, start_step=28, duration_steps=10)
        factor, flags = incident_masks([incident], 2, 30, upstream_decay=0.5, delay_steps=1)
        assert factor.shape == (2, 30)
        assert flags[0, 28:].sum() == 2

    def test_no_incidents_identity(self):
        factor, flags = incident_masks([], 4, 10, upstream_decay=0.5, delay_steps=1)
        np.testing.assert_allclose(factor, 1.0)
        np.testing.assert_allclose(flags, 0.0)
