"""Tests for traffic series serialisation and raw-array ingestion."""

import datetime as dt

import numpy as np
import pytest

from repro.data import FeatureConfig, TrafficDataset
from repro.traffic import load_series, save_series, series_from_arrays


class TestSaveLoad:
    def test_roundtrip_identical(self, tiny_series, tmp_path):
        path = save_series(tiny_series, tmp_path / "series.npz")
        loaded = load_series(path)
        np.testing.assert_allclose(loaded.speeds, tiny_series.speeds)
        np.testing.assert_allclose(loaded.precipitation, tiny_series.precipitation)
        np.testing.assert_allclose(loaded.day_types, tiny_series.day_types)
        assert loaded.timestamps == tiny_series.timestamps
        assert loaded.interval_minutes == tiny_series.interval_minutes

    def test_corridor_metadata_roundtrips(self, tiny_series, tmp_path):
        path = save_series(tiny_series, tmp_path / "series.npz")
        loaded = load_series(path)
        assert loaded.corridor.target_index == tiny_series.corridor.target_index
        assert len(loaded.corridor) == len(tiny_series.corridor)
        assert loaded.corridor.target.name == tiny_series.corridor.target.name

    def test_loaded_series_feeds_pipeline(self, tiny_series, tmp_path):
        path = save_series(tiny_series, tmp_path / "series.npz")
        loaded = load_series(path)
        dataset = TrafficDataset(loaded, FeatureConfig(), seed=1)
        assert dataset.features.num_windows > 0


class TestSeriesFromArrays:
    def _speeds(self, segments=5, total=600, seed=0):
        rng = np.random.default_rng(seed)
        base = 90.0 + 5.0 * np.sin(np.arange(total) / 50.0)
        return np.clip(base[None, :] + rng.normal(0, 3, size=(segments, total)), 10, 110)

    def test_minimal_construction(self):
        speeds = self._speeds()
        series = series_from_arrays(speeds, start=dt.datetime(2018, 7, 1))
        assert series.num_segments == 5
        assert series.num_steps == 600
        assert series.corridor.target_index == 2
        np.testing.assert_allclose(series.temperature, 20.0)
        np.testing.assert_allclose(series.events, 0.0)

    def test_calendar_channels_derived(self):
        speeds = self._speeds(total=288 * 2)
        series = series_from_arrays(speeds, start=dt.datetime(2018, 8, 14))
        # Aug 14 2018 is a weekday before a holiday: [1, 0, 1, 0].
        np.testing.assert_array_equal(series.day_types[0], [1.0, 0.0, 1.0, 0.0])
        # Aug 15 is the holiday itself.
        assert series.day_types[288][1] == 1.0
        assert series.hours[0] == 0 and series.hours[13] == 1

    def test_optional_channels_validated(self):
        speeds = self._speeds()
        with pytest.raises(ValueError, match="channel shape"):
            series_from_arrays(
                speeds, start=dt.datetime(2018, 7, 1), temperature=np.zeros(10)
            )

    def test_rejects_1d_speeds(self):
        with pytest.raises(ValueError, match="matrix"):
            series_from_arrays(np.zeros(100), start=dt.datetime(2018, 7, 1))

    def test_free_flow_from_percentile(self):
        speeds = self._speeds()
        series = series_from_arrays(speeds, start=dt.datetime(2018, 7, 1))
        assert series.corridor.target.free_flow_kmh == pytest.approx(
            np.percentile(speeds, 95), rel=0.01
        )

    def test_end_to_end_training_on_user_data(self, micro_preset):
        """A user's raw speed matrix trains an APOTS model."""
        from repro import APOTS

        speeds = self._speeds(total=288 * 6, seed=3)
        series = series_from_arrays(speeds, start=dt.datetime(2018, 7, 2))
        dataset = TrafficDataset(series, FeatureConfig(), seed=0)
        model = APOTS(predictor="F", adversarial=False, preset=micro_preset, seed=0)
        model.fit(dataset)
        assert np.isfinite(model.evaluate(dataset).mape)

    def test_custom_target_index(self):
        speeds = self._speeds()
        series = series_from_arrays(speeds, start=dt.datetime(2018, 7, 1), target_index=1)
        assert series.corridor.target_index == 1
