"""Tests for the corridor speed-field simulator."""

import numpy as np
import pytest

from repro.traffic import SimulationConfig, TrafficSimulator, simulate


@pytest.fixture(scope="module")
def series():
    return simulate(SimulationConfig(num_days=14, seed=7))


class TestShapesAndBounds:
    def test_shapes(self, series):
        t = 14 * 288
        assert series.speeds.shape == (9, t)
        assert series.num_steps == t
        assert len(series.timestamps) == t

    def test_speed_bounds(self, series):
        config = SimulationConfig(num_days=14, seed=7)
        assert series.speeds.min() >= config.min_speed_kmh
        assert series.speeds.max() <= config.max_speed_kmh

    def test_day_types_are_bits(self, series):
        assert set(np.unique(series.day_types)).issubset({0.0, 1.0})

    def test_hours_cycle(self, series):
        assert series.hours.min() == 0
        assert series.hours.max() == 23


class TestDeterminism:
    def test_same_seed_same_series(self):
        a = simulate(SimulationConfig(num_days=3, seed=11))
        b = simulate(SimulationConfig(num_days=3, seed=11))
        np.testing.assert_allclose(a.speeds, b.speeds)
        np.testing.assert_allclose(a.precipitation, b.precipitation)

    def test_different_seed_differs(self):
        a = simulate(SimulationConfig(num_days=3, seed=11))
        b = simulate(SimulationConfig(num_days=3, seed=12))
        assert not np.allclose(a.speeds, b.speeds)


class TestTrafficPatterns:
    def test_weekday_rush_hour_dip(self, series):
        speeds = series.target_speeds()
        weekday = series.day_types[:, 0] == 1
        night = weekday & (series.hours == 3)
        morning = weekday & (series.hours == 8)
        assert speeds[morning].mean() < speeds[night].mean() - 20.0

    def test_offday_lighter_morning_than_weekday(self, series):
        speeds = series.target_speeds()
        weekday = series.day_types[:, 0] == 1
        morning = series.hours == 8
        weekday_morning = speeds[morning & weekday].mean()
        offday_morning = speeds[morning & ~weekday].mean()
        assert offday_morning > weekday_morning + 10.0

    def test_rain_slows_traffic(self):
        # Compare the same config with rain coupling on vs off.
        wet = simulate(SimulationConfig(num_days=20, seed=5, rain_speed_factor=0.6))
        dry = simulate(SimulationConfig(num_days=20, seed=5, rain_speed_factor=1.0))
        raining = wet.precipitation > 0.3
        if raining.sum() > 50:
            gap = dry.target_speeds()[raining].mean() - wet.target_speeds()[raining].mean()
            assert gap > 2.0

    def test_abrupt_changes_exist_but_rare(self, series):
        speeds = series.target_speeds()
        rel = (speeds[:-1] - speeds[1:]) / speeds[:-1]
        dec_frac = float((rel >= 0.3).mean())
        acc_frac = float((rel <= -0.3).mean())
        assert 0.0005 < dec_frac < 0.05
        assert 0.0005 < acc_frac < 0.05

    def test_spatial_correlation_of_neighbours(self, series):
        a = series.speeds[4]
        b = series.speeds[5]
        far = series.speeds[0]
        corr_near = np.corrcoef(a, b)[0, 1]
        corr_far = np.corrcoef(a, far)[0, 1]
        assert corr_near > 0.7
        assert corr_near > corr_far

    def test_events_present(self, series):
        assert series.events.sum() > 0
        assert set(np.unique(series.events)).issubset({0.0, 1.0})


class TestDemandModel:
    def test_profile_peaks_at_rush_hours(self):
        sim = TrafficSimulator(SimulationConfig(num_days=1, seed=0))
        hours = np.linspace(0, 24, 289)[:-1]
        profile = sim.demand_profile(hours, weekday=True, holiday=False)
        morning = profile[(hours > 7) & (hours < 9)].max()
        midnight = profile[hours < 1].mean()
        assert morning > midnight * 2

    def test_holiday_profile_flatter(self):
        sim = TrafficSimulator(SimulationConfig(num_days=1, seed=0))
        hours = np.linspace(0, 24, 289)[:-1]
        weekday = sim.demand_profile(hours, weekday=True, holiday=False)
        holiday = sim.demand_profile(hours, weekday=False, holiday=True)
        assert holiday.max() < weekday.max()

    def test_congestion_factor_monotone_decreasing(self):
        sim = TrafficSimulator(SimulationConfig(num_days=1, seed=0))
        demand = np.linspace(0.0, 1.2, 50)
        factor = sim.congestion_speed_factor(demand)
        assert np.all(np.diff(factor) < 0)
        assert factor[0] > 0.95
        assert factor[-1] < 0.5
