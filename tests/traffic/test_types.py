"""Tests for corridor datatypes and validation."""

import datetime as dt

import numpy as np
import pytest

from repro.traffic import Corridor, RoadSegment, SimulationConfig, TrafficSeries


def segment(i=0, **overrides):
    defaults = dict(
        segment_id=i, name=f"s{i}", length_km=2.0, free_flow_kmh=100.0, capacity_vph=4000.0
    )
    defaults.update(overrides)
    return RoadSegment(**defaults)


class TestRoadSegment:
    def test_valid(self):
        seg = segment()
        assert seg.free_flow_kmh == 100.0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"length_km": 0.0},
            {"length_km": -1.0},
            {"free_flow_kmh": 20.0},
            {"free_flow_kmh": 200.0},
            {"capacity_vph": 0.0},
        ],
    )
    def test_invalid(self, overrides):
        with pytest.raises(ValueError):
            segment(**overrides)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            segment().length_km = 5.0


class TestCorridor:
    def test_gyeongbu_default(self):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(0))
        assert len(corridor) == 9
        assert corridor.target_index == 4
        assert corridor.target is corridor.segments[4]

    def test_adjacent_indices_order(self):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(0))
        assert corridor.adjacent_indices(2) == [2, 3, 4, 5, 6]

    def test_adjacent_indices_zero_m(self):
        corridor = Corridor.gyeongbu(rng=np.random.default_rng(0))
        assert corridor.adjacent_indices(0) == [4]

    def test_adjacent_indices_out_of_range(self):
        corridor = Corridor.gyeongbu(num_segments=5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="neighbours"):
            corridor.adjacent_indices(3)

    def test_needs_segments(self):
        with pytest.raises(ValueError):
            Corridor(segments=(), target_index=0)

    def test_target_index_bounds(self):
        with pytest.raises(ValueError):
            Corridor(segments=(segment(),), target_index=1)


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.num_days == 122
        assert config.interval_minutes == 5
        assert config.steps_per_day == 288
        assert config.total_steps == 122 * 288

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_days": 0},
            {"interval_minutes": 7},
            {"base_demand": 0.0},
            {"base_demand": 1.5},
            {"min_speed_kmh": 0.0},
            {"min_speed_kmh": 50.0, "max_speed_kmh": 40.0},
        ],
    )
    def test_invalid(self, overrides):
        with pytest.raises(ValueError):
            SimulationConfig(**overrides)


class TestTrafficSeries:
    def _series(self, t=10, segments=3):
        corridor = Corridor.gyeongbu(num_segments=segments, rng=np.random.default_rng(0))
        base = dt.datetime(2018, 7, 1)
        return TrafficSeries(
            corridor=corridor,
            speeds=np.full((segments, t), 80.0),
            temperature=np.zeros(t),
            precipitation=np.zeros(t),
            events=np.zeros((segments, t)),
            hours=np.zeros(t),
            day_types=np.zeros((t, 4)),
            timestamps=[base + dt.timedelta(minutes=5 * i) for i in range(t)],
        )

    def test_properties(self):
        series = self._series()
        assert series.num_steps == 10
        assert series.num_segments == 3
        np.testing.assert_allclose(series.target_speeds(), 80.0)

    def test_misaligned_rejected(self):
        series = self._series()
        with pytest.raises(ValueError, match="aligned"):
            TrafficSeries(
                corridor=series.corridor,
                speeds=series.speeds,
                temperature=series.temperature[:-1],
                precipitation=series.precipitation,
                events=series.events,
                hours=series.hours,
                day_types=series.day_types,
                timestamps=series.timestamps,
            )

    def test_slice_steps(self):
        series = self._series(t=20)
        sliced = series.slice_steps(5, 15)
        assert sliced.num_steps == 10
        assert sliced.timestamps[0] == series.timestamps[5]
        # The slice owns its data.
        sliced.speeds[:] = 0.0
        assert series.speeds.min() == 80.0
