"""Tests for the synthetic weather generator."""

import datetime as dt

import numpy as np

from repro.traffic import WeatherModel, generate_weather, timeline


def stamps_for(month: int, days: int = 10):
    return timeline(dt.date(2018, month, 1), days)


class TestWeatherModel:
    def test_output_shapes(self):
        stamps = stamps_for(7, days=2)
        temp, precip = generate_weather(stamps, np.random.default_rng(0))
        assert temp.shape == (len(stamps),)
        assert precip.shape == (len(stamps),)

    def test_reproducible(self):
        stamps = stamps_for(7, days=2)
        a = generate_weather(stamps, np.random.default_rng(5))
        b = generate_weather(stamps, np.random.default_rng(5))
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_summer_is_hot(self):
        stamps = stamps_for(8, days=5)
        temp, _ = generate_weather(stamps, np.random.default_rng(1))
        assert 20.0 < temp.mean() < 35.0

    def test_october_cooler_than_august(self):
        rng = np.random.default_rng(2)
        august, _ = generate_weather(stamps_for(8, days=7), rng)
        october, _ = generate_weather(stamps_for(10, days=7), np.random.default_rng(2))
        assert october.mean() < august.mean() - 3.0

    def test_diurnal_cycle_afternoon_warmer_than_night(self):
        stamps = stamps_for(7, days=10)
        temp, _ = generate_weather(stamps, np.random.default_rng(3))
        hours = np.array([s.hour for s in stamps])
        assert temp[hours == 15].mean() > temp[hours == 4].mean() + 2.0

    def test_precipitation_non_negative(self):
        _, precip = generate_weather(stamps_for(7, days=10), np.random.default_rng(4))
        assert np.all(precip >= 0.0)

    def test_monsoon_wetter_than_autumn(self):
        july = generate_weather(stamps_for(7, days=20), np.random.default_rng(6))[1]
        october = generate_weather(stamps_for(10, days=20), np.random.default_rng(6))[1]
        assert (july > 0).mean() > (october > 0).mean()

    def test_rain_comes_in_episodes(self):
        """Wet steps cluster: consecutive-wet probability far exceeds base rate."""
        _, precip = generate_weather(stamps_for(7, days=30), np.random.default_rng(7))
        wet = precip > 0
        if wet.sum() > 10:
            joint = (wet[1:] & wet[:-1]).mean()
            assert joint > wet.mean() ** 2 * 2.0

    def test_seasonal_mean_temperature_peaks_in_august(self):
        model = WeatherModel()
        august = model.seasonal_mean_temperature(dt.date(2018, 8, 1))
        october = model.seasonal_mean_temperature(dt.date(2018, 10, 25))
        assert august > 27.0
        assert october < 18.0
