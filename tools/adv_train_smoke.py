#!/usr/bin/env python
"""CI smoke check for input-space adversarial training (run by ``tools/ci.sh``).

Fits a micro-scale model with ``robust_fraction > 0`` under a
:class:`repro.obs.RunRecorder` and validates

* the run log (including the new ``adv_train_step`` events) validates
  against :mod:`repro.obs.schema`,
* every augmentation step perturbed a strict subset of the batch
  (mixed clean/adversarial minibatches, never all-or-nothing),
* clean and robust losses are finite and the perturbation stayed
  within the configured km/h budget, and
* the hardened weights differ from a ``robust_fraction=0`` control fit
  with the same seed — the augmenter demonstrably reached the loss.

Usage::

    PYTHONPATH=src python tools/adv_train_smoke.py [--obs-dir DIR]

Without ``--obs-dir`` the run log is written to a temporary directory
and discarded.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import APOTS, FeatureConfig, TrafficDataset  # noqa: E402
from repro.core import TrainSpec  # noqa: E402
from repro.obs import RunRecorder, use_recorder, validate_run_dir  # noqa: E402
from repro.traffic import SimulationConfig, simulate  # noqa: E402

SEED = 7


def run_smoke(obs_dir: Path) -> list[str]:
    """Fit a hardened micro model with a recorder; returns all failures."""
    series = simulate(SimulationConfig(num_days=6, seed=SEED))
    dataset = TrafficDataset(series, FeatureConfig(), seed=SEED)
    spec = TrainSpec(
        epochs=2, max_steps_per_epoch=4, batch_size=16, seed=SEED,
        robust_fraction=0.5, adv_epsilon_kmh=5.0,
    )

    with RunRecorder(obs_dir, manifest={"experiment": "adv_train_smoke"}) as recorder:
        with use_recorder(recorder):
            hardened = APOTS(
                predictor="F", adversarial=False, train_spec=spec, seed=SEED
            ).fit(dataset)

    errors = validate_run_dir(obs_dir)

    steps = [
        json.loads(line)
        for line in obs_dir.joinpath("events.jsonl").read_text().splitlines()
        if json.loads(line)["kind"] == "adv_train_step"
    ]
    if not steps:
        errors.append("no adv_train_step events recorded during the hardened fit")
    for event in steps:
        if not 0 < event["num_perturbed"] < event["num_samples"]:
            errors.append(
                f"step {event['step']}: perturbed {event['num_perturbed']} of "
                f"{event['num_samples']} samples (expected a mixed batch)"
            )
        for key in ("clean_loss", "robust_loss"):
            if not math.isfinite(event[key]):
                errors.append(f"step {event['step']}: {key} is not finite")
        if event["max_abs_delta_kmh"] > event["epsilon"] + 1e-9:
            errors.append(
                f"step {event['step']}: perturbation {event['max_abs_delta_kmh']:.4f} "
                "km/h exceeds the plausibility budget"
            )

    # Control fit: same seed, augmentation off.  Identical weights would
    # mean the augmenter silently never touched the training batches.
    control_spec = replace(spec, robust_fraction=0.0)
    control = APOTS(
        predictor="F", adversarial=False, train_spec=control_spec, seed=SEED
    ).fit(dataset)
    hardened_params = [p.data for p in hardened.predictor.parameters()]
    control_params = [p.data for p in control.predictor.parameters()]
    if all(np.array_equal(h, c) for h, c in zip(hardened_params, control_params)):
        errors.append("hardened weights identical to the robust_fraction=0 control")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--obs-dir", default=None, help="keep the run log here (default: tmp)")
    args = parser.parse_args(argv)
    if args.obs_dir is not None:
        errors = run_smoke(Path(args.obs_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="adv-train-smoke-") as tmp:
            errors = run_smoke(Path(tmp) / "run")
    if errors:
        print("adv_train_smoke: FAILED")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        "adv_train_smoke: OK (mixed adversarial batches logged, losses finite, "
        "budget respected, hardened weights diverge from the clean control)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
