#!/usr/bin/env python
"""CI smoke check for the adversarial-robustness layer (run by ``tools/ci.sh``).

Fits a micro-scale victim, runs one PGD epsilon sweep through
:func:`repro.attacks.evaluate_robustness` with a
:class:`repro.obs.RunRecorder` attached, and validates

* the attacked MAE is strictly worse than clean at every epsilon,
* every perturbation respects the plausibility budget, and
* the emitted run log (``attack_step`` / ``robustness_summary`` events)
  validates against :mod:`repro.obs.schema`.

Finally screens the attacked stream through a
:class:`repro.attacks.defense.PerturbationGate` and checks the attack's
onset transition registers at least one gate hit.

Usage::

    PYTHONPATH=src python tools/attack_smoke.py [--obs-dir DIR]

Without ``--obs-dir`` the run log is written to a temporary directory
and discarded.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import APOTS, FeatureConfig, TrafficDataset  # noqa: E402
from repro.attacks import (  # noqa: E402
    EvalSlice,
    GateConfig,
    PerturbationGate,
    PlausibilityBox,
    build_attack,
    evaluate_robustness,
)
from repro.core import TrainSpec  # noqa: E402
from repro.obs import RunRecorder, validate_run_dir  # noqa: E402
from repro.traffic import SimulationConfig, simulate  # noqa: E402

EPSILONS_KMH = (2.5, 5.0)
SAMPLES = 24


def run_smoke(obs_dir: Path) -> list[str]:
    """Attack a micro victim with a recorder; returns all failures."""
    series = simulate(SimulationConfig(num_days=6, seed=7))
    dataset = TrafficDataset(series, FeatureConfig(), seed=7)
    spec = TrainSpec(epochs=2, max_steps_per_epoch=4, seed=7)
    model = APOTS(predictor="F", adversarial=False, train_spec=spec, seed=7).fit(dataset)

    indices = dataset.subset("test")[:SAMPLES]
    batch = dataset.batch(indices)
    eval_slice = EvalSlice(
        images=batch.images,
        day_types=batch.day_types,
        targets_scaled=batch.targets,
        targets_kmh=dataset.features.targets_kmh[indices],
        last_input_kmh=dataset.features.last_input_kmh[indices],
    )

    with RunRecorder(obs_dir, manifest={"experiment": "attack_smoke"}) as recorder:
        report = evaluate_robustness(
            model.predictor, model.scalers, eval_slice,
            attack_name="pgd", epsilons_kmh=EPSILONS_KMH,
            model_name=model.name, recorder=recorder, seed=7,
        )

    errors = validate_run_dir(obs_dir)
    for point in report.results:
        clean = point.clean["whole"]["mae"]
        attacked = point.attacked["whole"]["mae"]
        if not attacked > clean:
            errors.append(
                f"eps {point.epsilon_kmh}: attacked MAE {attacked:.4f} "
                f"not worse than clean {clean:.4f}"
            )
        if point.max_abs_delta_kmh > point.epsilon_kmh + 1e-9:
            errors.append(
                f"eps {point.epsilon_kmh}: perturbation {point.max_abs_delta_kmh:.4f} "
                "km/h exceeds the plausibility budget"
            )

    # Gate drill: the attack's onset jump must register as a hit.
    epsilon = EPSILONS_KMH[-1]
    attack = build_attack("pgd", model.predictor, model.scalers,
                          PlausibilityBox(epsilon_kmh=epsilon), seed=7)
    attacked = attack.perturb(batch.images[:1], batch.day_types[:1], batch.targets[:1])
    gate = PerturbationGate(GateConfig(max_jump_kmh=max(4.0, 0.8 * epsilon)))
    middle = model.features.m  # target road is the middle image row
    clean_series = model.scalers.speed.inverse_transform(batch.images[0, middle])
    for step, speed in enumerate(clean_series[:-1]):
        gate.screen(0, step, float(speed))
    gate.screen(0, len(clean_series) - 1, float(attacked.speeds_kmh[0, middle, -1]))
    if gate.snapshot()["hits"] < 1:
        errors.append("gate registered no hit on the attack onset transition")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--obs-dir", default=None, help="keep the run log here (default: tmp)")
    args = parser.parse_args(argv)
    if args.obs_dir is not None:
        errors = run_smoke(Path(args.obs_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="attack-smoke-") as tmp:
            errors = run_smoke(Path(tmp) / "run")
    if errors:
        print("attack_smoke: FAILED")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        "attack_smoke: OK (PGD sweep degrades the victim within budget, "
        "run log validates, gate flags the onset)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
