#!/usr/bin/env python
"""Static layering check for the repro package.

Walks every module under ``src/repro`` with :mod:`ast` (nothing is
imported, so the check is fast and side-effect free) and fails when a
layer reaches into one it must not depend on.  The rules keep the online
serving path deployable without dragging the offline experiment harness
(and its plotting/IO weight) into the server image:

* ``repro.serving``  must not import ``repro.experiments`` or ``repro.baselines``,
  and of ``repro.attacks`` may import only the dependency-light
  ``repro.attacks.defense`` gate (via the ``ALLOWED`` carve-out below)
* ``repro.attacks``  may import ``repro.nn``/``repro.metrics``/``repro.obs``
  but must not reach into ``repro.core``, ``repro.data``, ``repro.traffic``,
  ``repro.serving``, ``repro.experiments`` or ``repro.baselines`` — attacks
  operate on arrays and predict callables, so any victim pipeline can use them
* ``repro.core``     sits *above* attacks: only the adversarial-training
  module may import the attack primitives it replays during training
  (``base``/``constraints``/``gradients``/``whitebox`` — via the per-module
  ``ALLOWED`` carve-out below); the rest of core, and everything attacks
  itself imports, stays attack-free so the dependency edge cannot cycle
* ``repro.data``     must not import ``repro.core``, ``repro.serving`` or ``repro.experiments``
* ``repro.nn``       must not import anything above it (only numpy/stdlib)
* ``repro.obs``      must not import anything above ``repro.nn`` — every
  layer instruments itself with obs, so obs depending on a higher layer
  would be a cycle
* ``repro.parallel`` may import only ``repro.obs`` (it ships arbitrary
  picklable work, so depending on any compute layer would be a cycle);
  of the compute layers only ``core`` / ``attacks`` / ``experiments`` /
  ``fleet`` (and tools) may import ``repro.parallel`` — the
  single-process serving path and the low layers stay substrate-free
* ``repro.fleet``    sits at the top of the serving stack: it may import
  ``repro.serving`` / ``repro.parallel`` / ``repro.obs`` (plus the
  ``repro.attacks.defense`` gate and the ``repro.core.zoo`` checkpoint
  loader via carve-outs) but nothing else; and nothing imports
  ``repro.fleet`` except ``repro.experiments`` and tools — replicas are
  plain serving processes that must not know they are being fleeted
* ``repro.mlops``    orchestrates across the stack, so it may import
  core / data / traffic / metrics / serving / fleet / obs / parallel —
  but never the experiment harness or attack stack; and only
  ``repro.experiments`` and tools may import ``repro.mlops`` back — the
  serving path must work without the continual-learning loop
* ``repro.network``  is an input source at the traffic layer's level:
  it may import only ``repro.traffic`` / ``repro.routing`` /
  ``repro.data`` / ``repro.obs`` (everything else is banned), and only
  ``repro.experiments`` (plus tools and tests) may import it back — the
  serving stack and the fleet consume its ``TrafficSeries`` output and
  plain-data shard starts, never its types
* ``repro.serving.telemetry`` is a deprecated shim (the real module is
  ``repro.obs.telemetry``): no in-repo module may import it

Run directly or via ``tools/ci.sh``::

    python tools/check_imports.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: layer prefix -> package prefixes it must never import.
FORBIDDEN: dict[str, tuple[str, ...]] = {
    "repro.serving": (
        "repro.experiments",
        "repro.baselines",
        "repro.attacks",
        "repro.parallel",
        "repro.fleet",
    ),
    "repro.attacks": (
        "repro.core",
        "repro.data",
        "repro.traffic",
        "repro.serving",
        "repro.experiments",
        "repro.baselines",
        "repro.fleet",
    ),
    "repro.core": (
        "repro.attacks",
        "repro.serving",
        "repro.experiments",
        "repro.baselines",
        "repro.traffic",
        "repro.fleet",
    ),
    "repro.data": (
        "repro.core",
        "repro.serving",
        "repro.experiments",
        "repro.parallel",
        "repro.fleet",
    ),
    "repro.nn": (
        "repro.core",
        "repro.data",
        "repro.serving",
        "repro.experiments",
        "repro.traffic",
        "repro.baselines",
        "repro.obs",
        "repro.parallel",
        "repro.fleet",
    ),
    "repro.obs": (
        "repro.core",
        "repro.data",
        "repro.serving",
        "repro.experiments",
        "repro.traffic",
        "repro.baselines",
        "repro.parallel",
        "repro.fleet",
    ),
    "repro.parallel": (
        "repro.core",
        "repro.data",
        "repro.serving",
        "repro.experiments",
        "repro.traffic",
        "repro.baselines",
        "repro.attacks",
        "repro.nn",
        "repro.metrics",
        "repro.routing",
        "repro.fleet",
    ),
    "repro.fleet": (
        "repro.core",
        "repro.data",
        "repro.traffic",
        "repro.experiments",
        "repro.baselines",
        "repro.attacks",
        "repro.nn",
        "repro.metrics",
        "repro.routing",
    ),
    "repro.mlops": (
        "repro.experiments",
        "repro.baselines",
        "repro.attacks",
        "repro.nn",
        "repro.routing",
        "repro.network",
    ),
    # The network engine generalises the traffic layer and feeds the
    # routing layer; it must stay servable-output-only — no models, no
    # serving, no experiment harness.
    "repro.network": (
        "repro.core",
        "repro.nn",
        "repro.serving",
        "repro.experiments",
        "repro.baselines",
        "repro.attacks",
        "repro.parallel",
        "repro.fleet",
        "repro.mlops",
        "repro.metrics",
    ),
}

#: Narrow carve-outs from FORBIDDEN: module prefix -> module names it may
#: import despite a banning rule (including names imported *from* them).
#: Keys may be whole layers *or* single modules — a single-module key
#: scopes the exemption to that file alone, so the carve-out cannot
#: silently widen to its package siblings.
ALLOWED: dict[str, tuple[str, ...]] = {
    # The serving-side defense gate is stdlib-only by design; the rest of
    # repro.attacks (autograd, metrics, harness) stays out of the server image.
    "repro.serving": ("repro.attacks.defense",),
    # Adversarial training replays the white-box attacks on minibatches,
    # so this one core module may import the attack primitives.  Scoped to
    # the leaf module: trainers reach attacks only through it, and the
    # sweep harness / defense gate stay off-limits to all of core.
    "repro.core.adversarial_training": (
        "repro.attacks.base",
        "repro.attacks.constraints",
        "repro.attacks.gradients",
        "repro.attacks.whitebox",
    ),
    # The fleet mirrors serving's gate carve-out (replicas screen their
    # own halo streams) and loads checkpoints through the zoo; the rest
    # of core — trainers, tuning, the APOTS facade — stays out of the
    # fleet parent and its replica images.
    "repro.fleet": ("repro.attacks.defense", "repro.core.zoo"),
}

#: Module -> importer prefixes that may reach it.  Unlike FORBIDDEN
#: (which bans layers wholesale) this pins a single internal module to a
#: short list of owners.  The compiled-tape replayer is an engine detail
#: of the autograd substrate: only repro.nn itself and the two hot-loop
#: layers (core trainers, attacks) may import it, so everything else
#: goes through the public eager API and the replay surface can change
#: without a repo-wide audit.  Note it is deliberately NOT exported from
#: ``repro.nn.__init__``.
RESTRICTED_IMPORTERS: dict[str, tuple[str, ...]] = {
    "repro.nn.compile": ("repro.nn", "repro.core", "repro.attacks"),
    # The continual-learning loop drives serving, never the reverse: a
    # forecast server must boot without the retraining machinery.  Tools
    # live outside src/repro, so the smoke scripts stay free to use it.
    "repro.mlops": ("repro.mlops", "repro.experiments"),
    # Deprecated shim (moved to repro.obs.telemetry in PR 5, retired in
    # PR 8): external importers get a DeprecationWarning, in-repo
    # importers get a CI failure.
    "repro.serving.telemetry": (),
    # The scenario engine is an input *source*: only the experiment
    # harness (and tools/tests outside src) may drive it.  The serving
    # stack and the fleet consume its TrafficSeries output and its
    # plain-data shard starts — never its types — so the engine can
    # evolve without touching the deployable path.
    "repro.network": ("repro.network", "repro.experiments"),
    # Graph-neighbourhood windows: built by the data layer, persisted by
    # the zoo, parameterised by the network engine and consumed by the
    # experiment harness.  The serving stack and the fleet stay
    # layout-agnostic by design — they duck-type `features.layout` off
    # checkpoints (see SegmentStateStore / ForecastFleet) instead of
    # importing the module, so the server image needs no graph code.
    "repro.data.graph_features": (
        "repro.data",
        "repro.core.zoo",
        "repro.network",
        "repro.experiments",
    ),
}


def module_name(path: Path) -> str:
    relative = path.relative_to(SRC).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def imported_modules(tree: ast.AST, module: str) -> list[tuple[int, str]]:
    """Absolute module names imported anywhere in the tree."""
    package_parts = module.split(".")
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Resolve `from ..x import y` relative to this module.
                anchor = package_parts[: len(package_parts) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            found.append((node.lineno, base))
            # `from repro import experiments` smuggles a module too.
            found.extend((node.lineno, f"{base}.{alias.name}") for alias in node.names)
    return found


def check() -> list[str]:
    violations: list[str] = []
    for path in sorted(SRC.glob("repro/**/*.py")):
        module = module_name(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        imports = imported_modules(tree, module)
        for target, importers in RESTRICTED_IMPORTERS.items():
            if module == target or any(
                module == p or module.startswith(p + ".") for p in importers
            ):
                continue
            for lineno, imported in imports:
                if imported == target or imported.startswith(target + "."):
                    violations.append(
                        f"{path.relative_to(SRC.parent)}:{lineno}: "
                        f"{module} imports {imported} (restricted to "
                        f"{', '.join(importers) or 'nothing: deprecated'})"
                    )
        layers = [
            layer
            for layer in FORBIDDEN
            if module == layer or module.startswith(layer + ".")
        ]
        if not layers:
            continue
        rules = [FORBIDDEN[layer] for layer in layers]
        # Carve-outs match by module prefix so a key can be a whole layer
        # ("repro.serving") or one file ("repro.core.adversarial_training").
        allowed = {
            name
            for key, names in ALLOWED.items()
            if module == key or module.startswith(key + ".")
            for name in names
        }
        for lineno, imported in imports:
            if any(imported == a or imported.startswith(a + ".") for a in allowed):
                continue
            for banned in (b for group in rules for b in group):
                if imported == banned or imported.startswith(banned + "."):
                    violations.append(
                        f"{path.relative_to(SRC.parent)}:{lineno}: "
                        f"{module} imports {imported} (forbidden for this layer)"
                    )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("import layering violations:")
        for line in violations:
            print(f"  {line}")
        return 1
    print(
        f"check_imports: OK ({len(FORBIDDEN)} layer rules, "
        f"{sum(map(len, ALLOWED.values()))} carve-outs, "
        f"{len(RESTRICTED_IMPORTERS)} restricted modules, no violations)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
