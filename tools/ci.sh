#!/usr/bin/env bash
# Tier-1 CI entrypoint: layering check, then the fast test suite.
# Benchmarks (benchmarks/) are tier-2 and run separately.
set -euo pipefail
cd "$(dirname "$0")/.."

python tools/check_imports.py
PYTHONPATH=src python tools/obs_smoke.py
PYTHONPATH=src python tools/attack_smoke.py
PYTHONPATH=src python tools/adv_train_smoke.py
PYTHONPATH=src python tools/compile_smoke.py
PYTHONPATH=src python tools/parallel_smoke.py
PYTHONPATH=src python tools/fleet_smoke.py
PYTHONPATH=src python tools/mlops_smoke.py
PYTHONPATH=src python tools/network_smoke.py
PYTHONPATH=src python tools/network_train_smoke.py
PYTHONPATH=src python -m pytest -x -q "$@"
