#!/usr/bin/env python
"""CI smoke check for the compiled-tape replayer (run by ``tools/ci.sh``).

Trains the same micro models twice — eagerly and with ``compile=True`` —
and fails unless the compiled runs are *bitwise* identical to the eager
ones: every logged loss, every final weight.  Three hot paths are
covered end to end:

* a hardened :class:`repro.core.trainer.SupervisedTrainer` fit (FGSM
  augmentation), which exercises the forward/loss tapes plus the
  ``input_grads_only`` attack-gradient tapes;
* a hardened :class:`repro.core.APOTSTrainer` fit (PGD augmentation),
  which adds the rollout/discriminator/predictor tape trio;
* the tapes must actually *replay*: a run that silently fell back to
  eager (every tape rejected) would pass a pure parity check while
  benchmarking nothing, so the smoke also asserts trusted replays
  happened.

The compile layer validates each tape against an eager shadow run
before trusting it, so a broken replay rule surfaces here as either a
parity failure or a zero-replay failure — never as silently wrong
numbers.

Usage::

    PYTHONPATH=src python tools/compile_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    APOTSTrainer,
    Discriminator,
    TrainSpec,
    build_predictor,
    table1_spec,
)
from repro.core.trainer import SupervisedTrainer  # noqa: E402
from repro.data import FeatureConfig, TrafficDataset  # noqa: E402
from repro.traffic import SimulationConfig, simulate  # noqa: E402

SEED = 7


def state_bytes(module) -> dict:
    return {k: (v.shape, v.tobytes()) for k, v in module.state_dict().items()}


def history_bytes(history) -> str:
    return repr(vars(history))


def replay_count(trainer) -> int:
    """Total trusted replays across a trainer's compiled functions."""
    total = 0
    for attr in vars(trainer).values():
        stats = getattr(attr, "stats", None)
        if isinstance(stats, dict) and "replay" in stats:
            total += stats["replay"]
    return total


def run_smoke() -> list[str]:
    failures: list[str] = []
    series = simulate(SimulationConfig(num_days=6, seed=SEED))
    dataset = TrafficDataset(series, FeatureConfig(), seed=SEED)

    # -- supervised + FGSM augmentation --------------------------------
    sup_keys = {}
    for compiled in (False, True):
        rng = np.random.default_rng(3)
        predictor = build_predictor("F", dataset.config, spec=table1_spec("F", 0.05), rng=rng)
        spec = TrainSpec(
            epochs=2, batch_size=16, max_steps_per_epoch=4, seed=SEED,
            robust_fraction=0.5, adv_epsilon_kmh=5.0, adv_attack="fgsm",
            compile=compiled,
        )
        trainer = SupervisedTrainer(predictor, spec)
        history = trainer.fit(dataset)
        sup_keys[compiled] = (history_bytes(history), state_bytes(predictor))
        if compiled and replay_count(trainer) == 0:
            failures.append("supervised: compiled fit never replayed a trusted tape")
    if sup_keys[False] != sup_keys[True]:
        failures.append("supervised: compiled fit diverged bitwise from eager")

    # -- APOTS + PGD augmentation --------------------------------------
    apots_keys = {}
    for compiled in (False, True):
        rng = np.random.default_rng(3)
        spec_t1 = table1_spec("L", 0.05)
        predictor = build_predictor("L", dataset.config, spec=spec_t1, rng=rng)
        disc = Discriminator(dataset.config, spec=spec_t1, conditional=True, rng=rng)
        spec = TrainSpec(
            epochs=1, adversarial_batch_size=8, max_steps_per_epoch=4, seed=SEED,
            robust_fraction=0.5, adv_epsilon_kmh=5.0, adv_attack="pgd",
            adv_pgd_steps=2, compile=compiled,
        )
        trainer = APOTSTrainer(predictor, disc, spec)
        history = trainer.fit(dataset)
        apots_keys[compiled] = (
            history_bytes(history), state_bytes(predictor), state_bytes(disc)
        )
        if compiled and replay_count(trainer) == 0:
            failures.append("apots: compiled fit never replayed a trusted tape")
    if apots_keys[False] != apots_keys[True]:
        failures.append("apots: compiled fit diverged bitwise from eager")

    return failures


def main() -> int:
    failures = run_smoke()
    if failures:
        print("compile smoke FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("compile smoke OK: compiled training/attack paths are bitwise-eager and replay tapes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
