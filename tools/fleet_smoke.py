#!/usr/bin/env python
"""CI smoke test for :mod:`repro.fleet` (run by ``tools/ci.sh``).

Two checks, both against live replica processes:

1. **Shard parity** — a 2-shard :class:`ForecastFleet` must answer a
   mixed ``predict_many`` batch bitwise-identically to the process-free
   ``shards=1`` fleet built from the same checkpoint and fed the same
   stream.
2. **Crash degradation** — after ``kill_replica`` hard-exits one
   replica, the lost shard's segments must come back as degraded naive
   persistence (never an exception, never a hang), the surviving shard
   must keep serving model forecasts, and the loss must be visible as a
   schema-valid ``fleet_shard_lost`` event in the obs run log.

Runs in under a minute at smoke scale::

    PYTHONPATH=src python tools/fleet_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro import APOTS
from repro.core import save_model
from repro.core.config import ScalePreset
from repro.data import FeatureConfig, TrafficDataset
from repro.fleet import ForecastFleet
from repro.obs import RunRecorder, validate_run_dir
from repro.serving import Observation
from repro.traffic import SimulationConfig, simulate

SMOKE_PRESET = ScalePreset(
    name="fleet-smoke",
    num_days=6,
    width_factor=0.05,
    epochs=2,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
    max_steps_per_epoch=4,
)
WARM_TICKS = 15


def _replay(fleet, series, steps) -> None:
    for step in steps:
        fleet.ingest_many(
            Observation(
                segment_id=segment,
                step=step,
                speed_kmh=float(series.speeds[segment, step]),
                event=float(series.events[segment, step]),
                temperature=float(series.temperature[step]),
                precipitation=float(series.precipitation[step]),
                day_type=tuple(series.day_types[step]),
            )
            for segment in range(series.num_segments)
        )


def _make_checkpoint(series, directory: str) -> str:
    dataset = TrafficDataset(series, FeatureConfig(), seed=5)
    model = APOTS(predictor="F", adversarial=False, preset=SMOKE_PRESET, seed=0)
    model.fit(dataset)
    save_model(model, directory)
    return directory


def check_shard_parity(checkpoint: str, series) -> None:
    query = [4, 0, 7, 2, 2, 8, 5, 1, 3, 6, 4]
    with ForecastFleet(checkpoint, series.num_segments, shards=1) as single:
        _replay(single, series, range(WARM_TICKS))
        reference = single.predict_many(query)
    with ForecastFleet(checkpoint, series.num_segments, shards=2) as sharded:
        _replay(sharded, series, range(WARM_TICKS))
        answers = sharded.predict_many(query)
    assert answers == reference, (
        "2-shard fleet diverged from the process-free fleet:\n"
        f"  shards=1: {reference}\n  shards=2: {answers}"
    )
    assert [f.segment_id for f in answers] == query, "request order not preserved"
    print(f"shard parity: OK ({len(query)} queries, shards 1 == 2, order preserved)")


def check_crash_degradation(checkpoint: str, series) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        recorder = RunRecorder(tmp, manifest={"tool": "fleet_smoke"})
        with ForecastFleet(
            checkpoint, series.num_segments, shards=2, recorder=recorder
        ) as fleet:
            _replay(fleet, series, range(WARM_TICKS))
            lost_shard = 1
            lo, hi = fleet.shard_map.owned_range(lost_shard)
            fleet.kill_replica(lost_shard)
            forecasts = fleet.predict_many(list(range(series.num_segments)))
            assert fleet.lost_shards == [lost_shard], (
                f"expected shard {lost_shard} lost, got {fleet.lost_shards}"
            )
            shed = [f for f in forecasts if lo <= f.segment_id < hi]
            assert shed and all(
                f.degraded and f.source == "naive" and "load shed" in f.degraded_reason
                for f in shed
            ), "lost shard's segments must degrade to shed naive persistence"
            survivors = [f for f in forecasts if not lo <= f.segment_id < hi]
            assert any(f.source == "model" for f in survivors), (
                "surviving shard stopped serving model forecasts"
            )
        recorder.close()

        errors = validate_run_dir(tmp)
        assert not errors, f"fleet events failed schema validation: {errors}"
        with open(os.path.join(tmp, "events.jsonl"), encoding="utf-8") as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
    assert kinds.count("fleet_shard_lost") == 1, (
        f"expected one fleet_shard_lost event, saw kinds {set(kinds)}"
    )
    assert "fleet_shed" in kinds, "sheds must be observable as fleet_shed events"
    print(
        f"crash degradation: OK ({len(shed)} queries shed to naive, "
        "schema-valid fleet_shard_lost)"
    )


def main() -> int:
    series = simulate(SimulationConfig(num_days=6, seed=99))
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = _make_checkpoint(series, tmp)
        check_shard_parity(checkpoint, series)
        check_crash_degradation(checkpoint, series)
    print("fleet_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
