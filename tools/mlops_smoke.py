#!/usr/bin/env python
"""CI smoke test for :mod:`repro.mlops` (run by ``tools/ci.sh``).

Drives the full continual-learning loop once, end to end, against the
simulator at smoke scale:

1. a champion trained on the base traffic regime serves behind a
   :class:`ContinualController`,
2. an injected regime shift must **trigger** a drift monitor,
3. the controller must **retrain** a challenger, **shadow-evaluate**
   it, and **hot-swap** it in,
4. a sabotaged checkpoint pushed through the same deploy path must be
   **rolled back** by the guardband automatically.

Then the obs run log is validated against the event schema and the
``mlops_*`` event sequence is checked for causal order — the log alone
must tell the promotion and rollback stories.

Runs in well under a minute::

    PYTHONPATH=src python tools/mlops_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro.core.config import ScalePreset
from repro.experiments.continual import run
from repro.obs import RunRecorder, use_recorder, validate_run_dir

SMOKE_PRESET = ScalePreset(
    name="mlops-smoke",
    num_days=6,
    width_factor=0.05,
    epochs=2,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
    max_steps_per_epoch=6,
)

#: Every transition the loop makes must leave one of these in the log.
LOOP_KINDS = (
    "mlops_trigger",
    "mlops_retrain_start",
    "mlops_retrain_end",
    "mlops_shadow",
    "mlops_swap",
    "mlops_rollback",
)


def check_loop(result) -> None:
    assert result.triggered, "regime shift did not trigger any drift monitor"
    assert result.swapped, "drift trigger did not end in a hot-swap"
    assert result.adapted_fingerprint != result.champion_fingerprint, (
        "swap did not change the serving fingerprint"
    )
    assert result.rolled_back, "sabotaged checkpoint was not rolled back"
    print(
        f"loop: OK (trigger via {result.trigger_monitor} monitor, "
        f"champion {result.champion_fingerprint[:8]} -> "
        f"challenger {result.adapted_fingerprint[:8]}, sabotage rolled back)"
    )


def check_event_log(run_dir: str) -> None:
    errors = validate_run_dir(run_dir)
    assert not errors, f"mlops events failed schema validation: {errors[:5]}"
    with open(os.path.join(run_dir, "events.jsonl"), encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle]
    kinds = [event["kind"] for event in events]
    for kind in LOOP_KINDS:
        assert kind in kinds, f"no {kind} event in the run log (kinds: {sorted(set(kinds))})"

    # Causal order: the first trigger precedes its retrain, which
    # precedes the shadow verdict, which precedes the first swap.
    first = {kind: kinds.index(kind) for kind in LOOP_KINDS}
    chain = ["mlops_trigger", "mlops_retrain_start", "mlops_retrain_end", "mlops_shadow"]
    for earlier, later in zip(chain, chain[1:]):
        assert first[earlier] < first[later], f"{earlier} must precede {later}"
    assert first["mlops_shadow"] < first["mlops_swap"], "swap before any shadow verdict"

    # The rollback must follow the sabotage swap (the LAST mlops_swap)
    # and restore the fingerprint that swap replaced.
    swaps = [event for event in events if event["kind"] == "mlops_swap"]
    rollbacks = [event for event in events if event["kind"] == "mlops_rollback"]
    sabotage = swaps[-1]
    drill = rollbacks[-1]
    last_swap_at = max(i for i, k in enumerate(kinds) if k == "mlops_swap")
    last_rollback_at = max(i for i, k in enumerate(kinds) if k == "mlops_rollback")
    assert last_rollback_at > last_swap_at, "rollback did not follow the sabotage swap"
    assert drill["fingerprint"] == sabotage["fingerprint"], (
        "rollback names a different checkpoint than the sabotage swap"
    )
    assert drill["restored_fingerprint"] == sabotage["previous_fingerprint"], (
        "rollback did not restore the pre-sabotage champion"
    )
    retrains = sum(1 for k in kinds if k == "mlops_retrain_end")
    print(
        f"event log: OK ({len(events)} events schema-valid; "
        f"{retrains} retrains, {len(swaps)} swaps, {len(rollbacks)} rollbacks; "
        "trigger -> retrain -> shadow -> swap order holds)"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="mlops-smoke-") as tmp:
        recorder = RunRecorder(tmp, manifest={"tool": "mlops_smoke"})
        with use_recorder(recorder):
            result = run(preset=SMOKE_PRESET, seed=7)
        recorder.close()
        check_loop(result)
        check_event_log(tmp)
    print("mlops_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
