#!/usr/bin/env python
"""CI smoke test for :mod:`repro.network` (run by ``tools/ci.sh``).

Four checks, all in seconds:

1. **Corridor invariant** — a :func:`from_corridor` graph run through
   :class:`NetworkSimulator` must reproduce :class:`TrafficSimulator`
   output bitwise (the delegation contract the whole PR rests on).
2. **Determinism** — building the same grid city twice gives identical
   graphs (BFS-ordered), and two scenario runs at one seed give
   identical speed fields.
3. **Sharding** — graph-aware partition starts are valid ShardMap
   inputs, never sever more edges than the balanced layout, and keep
   every routing property (ownership partition, contiguous halos).
4. **Experiment + obs** — the ``network`` experiment runs end to end at
   smoke scale under a recorder and its ``network_*`` events validate
   against the schema.

Run directly::

    PYTHONPATH=src python tools/network_smoke.py
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.experiments.registry import run_experiment
from repro.fleet.router import ShardMap
from repro.network import (
    NetworkSimulator,
    Scenario,
    WeatherFront,
    crossing_edges,
    from_corridor,
    grid_city,
    partition_starts,
)
from repro.obs import RunRecorder, use_recorder, validate_run_dir
from repro.traffic.simulator import simulate
from repro.traffic.types import Corridor, SimulationConfig


def check_corridor_invariant() -> None:
    config = SimulationConfig(num_days=2)
    corridor = Corridor.gyeongbu(rng=np.random.default_rng(config.seed))
    graph = from_corridor(corridor)
    assert graph.is_bfs_ordered(), "from_corridor graph must be BFS-ordered"
    reference = simulate(config, corridor)
    network = NetworkSimulator(graph, config).run()
    assert np.array_equal(reference.speeds, network.speeds), (
        "from_corridor network run must reproduce the corridor simulator bitwise"
    )
    assert np.array_equal(reference.events, network.events)
    print("network_smoke: corridor bitwise invariant OK")


def check_determinism() -> None:
    first, second = grid_city(4, 4, seed=7), grid_city(4, 4, seed=7)
    assert first.segments == second.segments and first.tails == second.tails
    assert first.is_bfs_ordered(), "grid_city must be BFS-ordered"
    config = SimulationConfig(num_days=1)
    scenario = Scenario("front", (WeatherFront(start_step=60, duration_steps=48),))
    runs = [
        NetworkSimulator(first, config, scenario=scenario).run().speeds for _ in range(2)
    ]
    assert np.array_equal(runs[0], runs[1]), "scenario runs must be deterministic"
    print("network_smoke: graph + scenario determinism OK")


def check_sharding() -> None:
    graph = grid_city(6, 6, seed=0)
    for shards in (2, 3, 4):
        starts = partition_starts(graph, shards)
        balanced = tuple((i * len(graph)) // shards for i in range(shards))
        assert crossing_edges(graph, starts) <= crossing_edges(graph, balanced)
        shard_map = ShardMap(len(graph), shards, starts=starts)
        covered = [shard_map.shard_of(seg) for seg in range(len(graph))]
        assert covered == sorted(covered), "ownership must stay contiguous"
        ranges = [shard_map.owned_range(k) for k in range(shards)]
        assert ranges[0][0] == 0 and ranges[-1][1] == len(graph)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo, "owned ranges must tile the segment space"
    print("network_smoke: graph-aware sharding OK")


def check_experiment_and_obs() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        with RunRecorder(tmp) as recorder, use_recorder(recorder):
            result = run_experiment("network", preset="smoke")
        errors = validate_run_dir(recorder.directory)
        assert not errors, f"network_* events failed schema validation: {errors}"
    repeat = run_experiment("network", preset="smoke")
    assert result.fingerprint == repeat.fingerprint, (
        "network experiment must be bitwise-reproducible at a fixed preset/seed"
    )
    print(
        f"network_smoke: experiment OK ({result.num_segments} segments, "
        f"delay delta {result.deltas['total_delay_delta_vh']:+,.0f} veh-h, "
        f"fingerprint {result.fingerprint[:12]})"
    )


def main() -> int:
    check_corridor_invariant()
    check_determinism()
    check_sharding()
    check_experiment_and_obs()
    print("network_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
