#!/usr/bin/env python
"""CI smoke test for graph-neighbourhood training (run by ``tools/ci.sh``).

Three checks, all in seconds:

1. **Corridor-reduction pin** — training on a :func:`from_corridor`
   graph layout must produce weights bitwise-identical to the corridor
   training path (equal ``model_fingerprint``), and re-running the graph
   fit must reproduce its own fingerprint exactly.
2. **Micro graph fit + stress eval** — a model fitted on a small grid
   city is scored per scenario phase against an incident-cascade run;
   the table must cover every phase with finite errors and the pre-
   scenario phase must show ~no degradation (causal attribution).
3. **Obs schema** — the ``network_train`` / ``network_stress`` events
   emitted by the ``network`` experiment validate against the schema.

Run directly::

    PYTHONPATH=src python tools/network_train_smoke.py
"""

from __future__ import annotations

import math
import sys
import tempfile

import numpy as np

from repro.core.config import ScalePreset
from repro.core.model import APOTS
from repro.core.zoo import model_fingerprint
from repro.data import FeatureConfig, TrafficDataset
from repro.data.graph_features import GraphFeatureConfig, GraphTrafficDataset
from repro.data.split import SplitIndices
from repro.network import (
    IncidentCascade,
    NetworkSimulator,
    Scenario,
    degradation_table,
    from_corridor,
    graph_window_layout,
    grid_city,
    phase_error_table,
    scenario_phases,
)
from repro.obs import RunRecorder, use_recorder, validate_run_dir
from repro.traffic.simulator import simulate
from repro.traffic.types import SimulationConfig

MICRO = ScalePreset(
    name="micro",
    num_days=2,
    width_factor=0.05,
    epochs=2,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
    max_steps_per_epoch=6,
)


def check_corridor_reduction_pin() -> None:
    series = simulate(SimulationConfig(num_days=MICRO.num_days, seed=3))
    corridor_config = FeatureConfig()
    graph_config = GraphFeatureConfig(
        layout=graph_window_layout(from_corridor(series.corridor), corridor_config.m)
    )
    corridor_ds = TrafficDataset(series, corridor_config, seed=5)
    graph_ds = GraphTrafficDataset(series, graph_config, seed=5)

    def fit(features, dataset) -> str:
        model = APOTS(
            predictor="F", adversarial=False, features=features, preset=MICRO, seed=1
        )
        return model_fingerprint(model.fit(dataset))

    corridor_print = fit(corridor_config, corridor_ds)
    graph_print = fit(graph_config, graph_ds)
    assert graph_print == corridor_print, (
        f"from_corridor graph training must be bitwise-identical to the "
        f"corridor path (corridor {corridor_print}, graph {graph_print})"
    )
    assert fit(graph_config, graph_ds) == graph_print, (
        "graph training must reproduce its own fingerprint on a re-run"
    )
    print(f"network_train_smoke: corridor-reduction pin OK ({graph_print})")


def check_graph_fit_and_stress() -> None:
    graph = grid_city(3, 3, seed=0)
    config = SimulationConfig(num_days=1, seed=3)
    scenario = Scenario(
        "cascade",
        (IncidentCascade(segment=graph.target_index, start_step=config.total_steps // 3),),
    )
    baseline = NetworkSimulator(graph, config).run()
    stressed = NetworkSimulator(graph, config, scenario=scenario).run()

    feature_config = GraphFeatureConfig(layout=graph_window_layout(graph, 2))
    dataset = GraphTrafficDataset(baseline, feature_config, seed=0)
    model = APOTS(
        predictor="F", adversarial=False, features=feature_config, preset=MICRO, seed=0
    ).fit(dataset)

    phases = scenario_phases(scenario, baseline.num_steps)
    num_windows = dataset.features.num_windows
    all_test = SplitIndices(
        train=np.array([], dtype=np.int64),
        validation=np.array([], dtype=np.int64),
        test=np.arange(num_windows),
    )
    tables = {}
    for name, series in (("baseline", baseline), ("stress", stressed)):
        eval_ds = GraphTrafficDataset(
            series, feature_config, split=all_test, seed=0,
            scalers=dataset.features.scalers,
        )
        indices = eval_ds.subset("test")
        tables[name] = phase_error_table(
            phases,
            eval_ds.features.target_steps[indices],
            model.predict(eval_ds),
            eval_ds.features.targets_kmh[indices],
        )
    degradation = degradation_table(tables["baseline"], tables["stress"])
    assert set(degradation) == {"pre", "cascade"}, f"phases: {sorted(degradation)}"
    for phase, ratio in degradation.items():
        assert math.isfinite(ratio), f"phase {phase} degradation is {ratio}"
    assert abs(degradation["pre"] - 1.0) < 0.05, (
        f"pre-scenario phase must not degrade (got x{degradation['pre']:.3f})"
    )
    summary = ", ".join(f"{p} x{r:.2f}" for p, r in sorted(degradation.items()))
    print(f"network_train_smoke: graph fit + stress eval OK ({summary})")


def check_obs_schema() -> None:
    from repro.experiments.registry import run_experiment

    with tempfile.TemporaryDirectory() as tmp:
        with RunRecorder(tmp) as recorder, use_recorder(recorder):
            result = run_experiment("network", preset="smoke")
        errors = validate_run_dir(recorder.directory)
        assert not errors, f"network_* events failed schema validation: {errors}"
    assert set(result.training) == {"F", "APOTS_F"}
    worst = max(
        (ratio, f"{name}:{phase}")
        for name, info in result.training.items()
        for phase, ratio in info["degradation"].items()
        if not np.isnan(ratio)
    )
    print(
        f"network_train_smoke: experiment obs OK "
        f"(worst degradation {worst[1]} x{worst[0]:.2f})"
    )


def main() -> int:
    check_corridor_reduction_pin()
    check_graph_fit_and_stress()
    check_obs_schema()
    print("network_train_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
