#!/usr/bin/env python
"""CI smoke check for the observability layer (run by ``tools/ci.sh``).

Runs a real 2-epoch adversarial training at micro scale with a
:class:`repro.obs.RunRecorder` attached (the programmatic equivalent of
``python -m repro.experiments ... --obs-dir DIR``), then validates the
emitted run directory against :mod:`repro.obs.schema` and asserts the
per-epoch events carry the GAN-health signals (P/D losses, D real/fake
probabilities, P/D gradient norms).  Fails loudly if the trainers ever
drift from the documented event schema.

Usage::

    PYTHONPATH=src python tools/obs_smoke.py [--obs-dir DIR]

Without ``--obs-dir`` the run log is written to a temporary directory
and discarded.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import APOTSTrainer, Discriminator, TrainSpec, build_predictor, table1_spec  # noqa: E402
from repro.data import FeatureConfig, TrafficDataset  # noqa: E402
from repro.obs import RunRecorder, validate_run_dir  # noqa: E402
from repro.traffic import SimulationConfig, simulate  # noqa: E402

#: Per-epoch event fields the acceptance criteria pin.
EPOCH_SIGNALS = (
    "predictor_loss",
    "discriminator_loss",
    "discriminator_real_prob",
    "discriminator_fake_prob",
    "predictor_grad_norm",
    "discriminator_grad_norm",
)


def run_smoke(obs_dir: Path) -> list[str]:
    """Train 2 epochs with a recorder; returns all validation errors."""
    series = simulate(SimulationConfig(num_days=6, seed=7))
    dataset = TrafficDataset(series, FeatureConfig(), seed=7)
    rng = np.random.default_rng(7)
    predictor = build_predictor("F", dataset.config, spec=table1_spec("F", 0.05), rng=rng)
    discriminator = Discriminator(dataset.config, spec=table1_spec("F", 0.05), rng=rng)
    spec = TrainSpec(epochs=2, adversarial_batch_size=8, max_steps_per_epoch=4, seed=7)

    with RunRecorder(obs_dir, manifest={"experiment": "obs_smoke"}) as recorder:
        APOTSTrainer(predictor, discriminator, spec).fit(dataset, recorder=recorder)

    errors = validate_run_dir(obs_dir)

    epochs = []
    with (obs_dir / "events.jsonl").open(encoding="utf-8") as handle:
        for line in handle:
            event = json.loads(line)
            if event.get("kind") == "adv_epoch":
                epochs.append(event)
    if len(epochs) != spec.epochs:
        errors.append(f"expected {spec.epochs} adv_epoch events, found {len(epochs)}")
    for event in epochs:
        for signal in EPOCH_SIGNALS:
            value = event.get(signal)
            if not isinstance(value, (int, float)) or not np.isfinite(value):
                errors.append(
                    f"adv_epoch {event.get('epoch')}: signal {signal!r} not finite ({value!r})"
                )

    manifest = json.loads((obs_dir / "manifest.json").read_text(encoding="utf-8"))
    for field in ("train_spec", "seed", "finished_at", "sections"):
        if field not in manifest:
            errors.append(f"manifest.json: missing post-run field {field!r}")
    for section in ("d_step", "p_step"):
        if section not in manifest.get("sections", {}):
            errors.append(f"manifest.json: section timings missing {section!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--obs-dir", default=None, help="keep the run log here (default: tmp)")
    args = parser.parse_args(argv)
    if args.obs_dir is not None:
        errors = run_smoke(Path(args.obs_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
            errors = run_smoke(Path(tmp) / "run")
    if errors:
        print("obs_smoke: FAILED")
        for error in errors:
            print(f"  {error}")
        return 1
    print("obs_smoke: OK (2-epoch adversarial run log validates against repro.obs.schema)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
