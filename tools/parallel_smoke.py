#!/usr/bin/env python
"""CI smoke test for :mod:`repro.parallel` (run by ``tools/ci.sh``).

Two checks, both against live subprocesses:

1. **Parallel == serial** — a 2-worker ``grid_search`` over a tiny
   dataset must score every candidate identically to the serial run
   (same params, same validation MAPEs, same best model predictions).
2. **Crash resilience** — a worker that hard-exits (``os._exit``) on a
   task's first attempt must be replaced and the task retried, the map
   must still return every result, and the retry must be visible as a
   schema-valid ``pool_task_retry`` event in the obs run log — not as
   a hang.

Runs in a few seconds at smoke scale::

    PYTHONPATH=src python tools/parallel_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

import numpy as np

from repro.core.config import ScalePreset
from repro.core.tuning import grid_search
from repro.data import FeatureConfig, TrafficDataset
from repro.obs import RunRecorder, validate_run_dir
from repro.parallel import WorkerPool, current_task_attempt
from repro.traffic import SimulationConfig, simulate

SMOKE_PRESET = ScalePreset(
    name="parallel-smoke",
    num_days=6,
    width_factor=0.05,
    epochs=2,
    adversarial_epochs=1,
    batch_size=64,
    adversarial_batch_size=8,
    max_steps_per_epoch=4,
)


def check_grid_search_parity() -> None:
    series = simulate(SimulationConfig(num_days=6, seed=99))
    dataset = TrafficDataset(series, FeatureConfig(), seed=5)
    grid = {"learning_rate": [0.001, 0.01]}

    serial = grid_search("F", dataset, SMOKE_PRESET, train_grid=grid, seed=0, workers=1)
    parallel = grid_search("F", dataset, SMOKE_PRESET, train_grid=grid, seed=0, workers=2)

    assert [e["params"] for e in serial.entries] == [e["params"] for e in parallel.entries], (
        "parallel grid search visited different candidates than serial"
    )
    for ours, theirs in zip(serial.entries, parallel.entries):
        assert ours["validation_mape"] == theirs["validation_mape"], (
            f"MAPE mismatch at {ours['params']}: "
            f"{ours['validation_mape']} != {theirs['validation_mape']}"
        )
    prediction_serial = serial.best_model().predict(dataset, subset="validation")
    prediction_parallel = parallel.best_model().predict(dataset, subset="validation")
    assert np.array_equal(prediction_serial, prediction_parallel), (
        "best models diverge between serial and 2-worker grid search"
    )
    print(f"grid search parity: OK ({len(serial.entries)} candidates, workers 1 == 2)")


def _crash_on_first_attempt(item: int) -> int:
    if item == 1 and current_task_attempt() == 0:
        os._exit(17)  # simulate a segfault/OOM kill, not a python exception
    return item * 111


def check_crash_retry() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        recorder = RunRecorder(tmp, manifest={"tool": "parallel_smoke"})
        pool = WorkerPool(2, max_retries=2, recorder=recorder)
        results = pool.map(_crash_on_first_attempt, range(4))
        recorder.close()

        assert results == [0, 111, 222, 333], f"wrong results after crash retry: {results}"
        errors = validate_run_dir(tmp)
        assert not errors, f"pool events failed schema validation: {errors}"
        with open(os.path.join(tmp, "events.jsonl"), encoding="utf-8") as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
    retries = kinds.count("pool_task_retry")
    assert retries >= 1, f"expected a pool_task_retry event, saw kinds {set(kinds)}"
    assert kinds.count("pool_task_end") == 4, "every task should report pool_task_end"
    print(f"crash retry: OK (worker death retried {retries}x, schema-valid events)")


def main() -> int:
    check_grid_search_parity()
    check_crash_retry()
    print("parallel_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
