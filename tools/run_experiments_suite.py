"""Run the full medium-scale experiment suite and dump raw renders.

Order matters for the serial stage: table3 populates the in-process
model cache that fig4/fig5/fig6 reuse.  Table II runs at a reduced
adversarial budget (documented in EXPERIMENTS.md) because it needs 8
adversarial Hybrid trainings.

With ``--workers N`` the experiments *after* the cache-populating
stage run across N processes via :func:`repro.parallel.parallel_map`.
The workers fork after table3 finishes, so they inherit its model
cache; each experiment renders inside its worker and the parent writes
the renders in the same canonical order as a serial run.  With the
default ``--workers 1`` nothing forks and every experiment runs in the
parent exactly as before, producing identical renders.

A failing experiment no longer aborts the suite: its traceback is
captured, the remaining experiments still run, a pass/fail table is
printed at the end, and only then does the process exit non-zero.

Usage: python tools/run_experiments_suite.py [output-file] [preset] [--workers N]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
import traceback

from repro.core.config import PRESETS
from repro.experiments import ablations, fig1, fig4, fig5, fig6, table2, table3
from repro.parallel import parallel_map

#: Stage A runs serially, in order: fig1 first (cheap smoke of the
#: pipeline), then table3, which trains the model grid every later
#: artefact reads from the cache.
STAGE_A = ("fig1", "table3")

#: Stage B experiments only *read* the table3 cache (or train their own
#: private variants) and are independent of each other, so they may run
#: in any order — or in parallel.
STAGE_B = (
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "ablation_loss_ratio",
    "ablation_disc_input",
    "ablation_conditioning",
    "ablation_adjacency",
    "ablation_horizon",
)

#: name -> (runner, kwargs). Filled by :func:`_build_suite` (needs the
#: CLI preset); module-level so forked workers inherit it.
_SUITE: dict = {}


def _build_suite(preset) -> None:
    table2_preset = (
        dataclasses.replace(PRESETS[preset], adversarial_epochs=6)
        if preset in PRESETS
        else preset
    )
    _SUITE.update(
        {
            "fig1": (fig1.run, {"preset": preset}),
            "table3": (table3.run, {"preset": preset}),
            "fig4": (fig4.run, {"preset": preset}),
            "fig5": (fig5.run, {"preset": preset}),
            "fig6": (fig6.run, {"preset": preset}),
            "table2": (table2.run, {"preset": table2_preset}),
            "ablation_loss_ratio": (ablations.loss_ratio_ablation, {"preset": preset}),
            "ablation_disc_input": (ablations.discriminator_input_ablation, {"preset": preset}),
            "ablation_conditioning": (ablations.conditioning_ablation, {"preset": preset}),
            "ablation_adjacency": (ablations.adjacency_ablation, {"preset": preset}),
            "ablation_horizon": (ablations.horizon_ablation, {"preset": preset}),
        }
    )


def _run_one(name: str) -> tuple[str, str | None, str | None, float]:
    """Run one experiment; never raises.

    Returns ``(name, rendered text, error traceback, seconds)`` —
    rendering happens here (worker side) so only strings cross the
    process boundary, keeping the parallel path pickling-proof.
    """
    runner, kwargs = _SUITE[name]
    started = time.perf_counter()
    try:
        result = runner(**kwargs)
        rendered = result.render()
    except Exception:
        return name, None, traceback.format_exc(), time.perf_counter() - started
    return name, rendered, None, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="experiments_raw.txt")
    parser.add_argument("preset", nargs="?", default="medium")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="processes for the post-table3 experiments (default 1 = serial)",
    )
    args = parser.parse_args(argv)
    _build_suite(args.preset)

    stream = open(args.output, "w", buffering=1)
    started = time.time()
    outcomes: dict[str, tuple[str | None, float]] = {}  # name -> (error, seconds)
    table3_result = None

    def emit(text: str) -> None:
        stamp = time.time() - started
        stream.write(f"\n===== [{stamp:7.1f}s] {text}\n")
        print(f"[{stamp:7.1f}s] {text}", flush=True)

    def record(name: str, rendered: str | None, error: str | None, seconds: float) -> None:
        emit(f"RESULT {name}" if error is None else f"FAILED {name}")
        stream.write((rendered if error is None else error) + "\n")
        outcomes[name] = (error, seconds)

    for name in STAGE_A:
        emit(f"BEGIN {name}")
        runner, kwargs = _SUITE[name]
        stage_started = time.perf_counter()
        try:
            result = runner(**kwargs)
            rendered, error = result.render(), None
        except Exception:
            result, rendered, error = None, None, traceback.format_exc()
        record(name, rendered, error, time.perf_counter() - stage_started)
        if name == "table3":
            # Keep the object: the t-tests below need it, not its render.
            table3_result = result

    if args.workers > 1:
        emit(f"BEGIN stage B ({len(STAGE_B)} experiments, workers={args.workers})")
        stage_b = parallel_map(_run_one, STAGE_B, workers=args.workers, return_failures=True)
        for name, finished in zip(STAGE_B, stage_b):
            if isinstance(finished, tuple):
                record(*finished)
            else:  # TaskFailure: the worker itself died repeatedly
                record(name, None, str(finished), 0.0)
    else:
        for name in STAGE_B:
            emit(f"BEGIN {name}")
            _, rendered, error, seconds = _run_one(name)
            record(name, rendered, error, seconds)

    if table3_result is not None:
        emit("extra: t-tests and best model")
        stream.write(f"adversarial t-test: {table3_result.adversarial_t_test()}\n")
        stream.write(f"additional-data t-test: {table3_result.additional_data_t_test()}\n")
        stream.write(f"best model: {table3_result.best_model()}\n")
    else:
        emit("extra: skipped (table3 failed)")

    failures = [name for name, (error, _) in outcomes.items() if error is not None]
    emit("SUMMARY")
    lines = ["experiment              status      time"]
    for name, (error, seconds) in outcomes.items():
        status = "ok" if error is None else "FAIL"
        lines.append(f"{name:22s}  {status:6s}  {seconds:7.1f}s")
    lines.append(
        f"{len(outcomes) - len(failures)}/{len(outcomes)} experiments passed"
        + (f"; FAILED: {', '.join(failures)}" if failures else "")
    )
    table = "\n".join(lines)
    stream.write(table + "\n")
    print(table, flush=True)
    emit("DONE")
    stream.close()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
