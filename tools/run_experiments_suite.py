"""Run the full medium-scale experiment suite and dump raw renders.

Order matters: table3 populates the model cache that fig4/fig5/fig6
reuse.  Table II runs at a reduced adversarial budget (documented in
EXPERIMENTS.md) because it needs 8 adversarial Hybrid trainings.

Usage: python tools/run_experiments_suite.py [output-file] [preset]
"""

import dataclasses
import sys
import time

from repro.core.config import PRESETS
from repro.experiments import ablations, fig1, fig4, fig5, fig6, table2, table3

OUT = sys.argv[1] if len(sys.argv) > 1 else "experiments_raw.txt"
PRESET = sys.argv[2] if len(sys.argv) > 2 else "medium"


def main() -> None:
    stream = open(OUT, "w", buffering=1)
    started = time.time()

    def emit(text: str) -> None:
        stamp = time.time() - started
        stream.write(f"\n===== [{stamp:7.1f}s] {text}\n")
        print(f"[{stamp:7.1f}s] {text}", flush=True)

    def run(name, func, **kwargs):
        emit(f"BEGIN {name}")
        result = func(preset=kwargs.pop("preset", PRESET), **kwargs)
        emit(f"RESULT {name}")
        stream.write(result.render() + "\n")
        return result

    run("fig1", fig1.run)
    t3 = run("table3", table3.run)
    run("fig4", fig4.run)
    run("fig5", fig5.run)
    run("fig6", fig6.run)

    table2_preset = dataclasses.replace(PRESETS[PRESET], adversarial_epochs=6) \
        if PRESET in PRESETS else PRESET
    run("table2", table2.run, preset=table2_preset)

    run("ablation_loss_ratio", ablations.loss_ratio_ablation)
    run("ablation_disc_input", ablations.discriminator_input_ablation)
    run("ablation_conditioning", ablations.conditioning_ablation)
    run("ablation_adjacency", ablations.adjacency_ablation)
    run("ablation_horizon", ablations.horizon_ablation)

    emit("extra: t-tests and best model")
    stream.write(f"adversarial t-test: {t3.adversarial_t_test()}\n")
    stream.write(f"additional-data t-test: {t3.additional_data_t_test()}\n")
    stream.write(f"best model: {t3.best_model()}\n")
    emit("DONE")
    stream.close()


if __name__ == "__main__":
    main()
